"""The active-set scheduler contract (DESIGN.md §3.6).

Two pillars:

1. **Equivalence** — ``scheduler="active"`` and ``scheduler="dense"``
   produce identical :class:`~repro.local.metrics.RunReport`s (outputs,
   rounds, ``total``, ``by_tag``, ``per_round``, ``halted``) for the
   distributed ``Sampler`` and every simulate path, across graph
   families × seeds, including runs with fault plans and
   ``fixed_rounds``.
2. **Quiescence** — sleeping nodes are genuinely not stepped on
   empty-inbox rounds, inbound messages always wake them, and the wake
   API enforces its declared invariants.
"""

from __future__ import annotations

import pytest

from repro.algorithms import BallCollect, MinIdAggregation
from repro.algorithms.runner import run_direct
from repro.core import SamplerParams
from repro.core.distributed import build_spanner_distributed
from repro.core.distributed.program import SamplerProgram
from repro.core.distributed.schedule import Schedule
from repro.errors import ProtocolError
from repro.graphs import barabasi_albert, erdos_renyi, torus
from repro.local import FaultPlan, Network, NodeProgram
from repro.local.runtime import run_program
from repro.simulate import run_one_stage, run_two_stage, t_local_broadcast
from repro.simulate.gossip import run_push_pull

FAMILIES = {
    "gnp": lambda: erdos_renyi(60, 0.12, seed=5),
    "torus": lambda: torus(8, 8),
    "ba": lambda: barabasi_albert(64, 2, seed=7),
}
SEEDS = (0, 1, 2)


def assert_reports_equal(dense, active):
    assert dense.outputs == active.outputs
    assert dense.rounds == active.rounds
    assert dense.halted == active.halted
    assert dense.messages.total == active.messages.total
    assert dense.messages.by_tag == active.messages.by_tag
    assert dense.messages.per_round == active.messages.per_round
    assert dense.messages.dropped == active.messages.dropped


def run_sampler(net, params, scheduler):
    schedule = Schedule.build(params)
    return run_program(
        net,
        lambda node: SamplerProgram(node, params, schedule),
        seed=params.seed,
        max_rounds=schedule.total_rounds + 2,
        n_hint=net.n,
        scheduler=scheduler,
    )


class TestSamplerEquivalence:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_runreport_identical(self, family, seed):
        net = FAMILIES[family]()
        params = SamplerParams(k=2, h=2, seed=seed)
        dense = run_sampler(net, params, "dense")
        active = run_sampler(net, params, "active")
        assert_reports_equal(dense, active)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_spanner_results_identical(self, family):
        net = FAMILIES[family]()
        params = SamplerParams(k=1, h=3, seed=11, c_query=0.7, c_target=1.0)
        dense = build_spanner_distributed(net, params, scheduler="dense")
        active = build_spanner_distributed(net, params, scheduler="active")
        assert dense.edges == active.edges
        assert dense.rounds == active.rounds
        assert dense.trace.signature() == active.trace.signature()
        assert dense.messages.per_round == active.messages.per_round

    @pytest.mark.parametrize("drop_seed", (9, 17, 23))
    def test_sampler_under_faults(self, er_small, drop_seed):
        plan = FaultPlan(drop_probability=0.02, seed=drop_seed)
        params = SamplerParams(k=1, h=2, seed=3)
        schedule = Schedule.build(params)

        def run(scheduler):
            return run_program(
                er_small,
                lambda node: SamplerProgram(node, params, schedule),
                seed=params.seed,
                max_rounds=schedule.total_rounds + 2,
                n_hint=er_small.n,
                faults=plan,
                fixed_rounds=schedule.total_rounds,
                scheduler=scheduler,
            )

        # Dropped broadcasts can strand convergecasts, so run under a
        # fixed budget: the scheduler contract must hold regardless.
        try:
            dense = run("dense")
        except ProtocolError as exc:
            with pytest.raises(ProtocolError) as active_exc:
                run("active")
            assert str(active_exc.value) == str(exc)
            return
        active = run("active")
        assert_reports_equal(dense, active)
        assert dense.messages.dropped > 0


class TestSimulatePathsEquivalence:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_flood_runtime_engine(self, family, seed):
        net = FAMILIES[family]()
        reports = {}
        for scheduler in ("dense", "active"):
            reports[scheduler] = t_local_broadcast(
                net,
                payload_of=lambda v: ("ball", v),
                radius=3,
                seed=seed,
                engine="runtime",
                scheduler=scheduler,
            )
        dense, active = reports["dense"], reports["active"]
        assert dense.collected == active.collected
        assert dense.rounds == active.rounds
        assert dense.messages.total == active.messages.total
        assert dense.messages.per_round == active.messages.per_round
        assert dense.messages.by_tag == active.messages.by_tag

    @pytest.mark.parametrize("seed", SEEDS)
    def test_direct_runner(self, er_small, seed):
        algo = MinIdAggregation(2)
        dense = run_direct(er_small, algo, seed=seed, scheduler="dense")
        active = run_direct(er_small, algo, seed=seed, scheduler="active")
        assert dense.outputs == active.outputs
        assert dense.rounds == active.rounds
        assert dense.messages.total == active.messages.total
        assert dense.messages.per_round == active.messages.per_round

    def test_direct_runner_with_isolated_nodes(self):
        # 0-1 edge plus isolated nodes 2, 3: the degree-0 fast path must
        # not change rounds, outputs, or metering on either scheduler.
        net = Network.from_edge_pairs(4, [(0, 1)])
        algo = MinIdAggregation(2)
        dense = run_direct(net, algo, seed=1, scheduler="dense")
        active = run_direct(net, algo, seed=1, scheduler="active")
        assert dense.outputs == active.outputs
        assert dense.rounds == active.rounds == algo.rounds(net.n)
        assert dense.messages.total == active.messages.total

    def test_direct_runner_on_edgeless_network(self):
        # All nodes isolated: precomputed nodes must still halt at round
        # t on BOTH schedulers (the dense one steps them every round).
        net = Network.from_edge_pairs(3, [])
        algo = BallCollect(4)
        dense = run_direct(net, algo, seed=1, scheduler="dense")
        active = run_direct(net, algo, seed=1, scheduler="active")
        assert dense.outputs == active.outputs
        assert dense.rounds == active.rounds == algo.rounds(net.n)
        assert dense.messages.per_round == active.messages.per_round

    @pytest.mark.parametrize("seed", SEEDS)
    def test_push_pull_gossip(self, er_small, seed):
        dense = run_push_pull(er_small, rounds=6, t=2, seed=seed, scheduler="dense")
        active = run_push_pull(er_small, rounds=6, t=2, seed=seed, scheduler="active")
        assert dense.coverage == active.coverage
        assert dense.rounds == active.rounds
        assert dense.messages.total == active.messages.total
        assert dense.messages.per_round == active.messages.per_round

    def test_one_and_two_stage_schemes(self):
        net = erdos_renyi(80, 0.15, seed=13)
        params = SamplerParams(k=1, h=2, seed=7, c_query=0.7, c_target=1.0)
        payload = BallCollect(2)
        one_d = run_one_stage(net, payload, params=params, seed=5, scheduler="dense")
        one_a = run_one_stage(net, payload, params=params, seed=5, scheduler="active")
        assert one_d.outputs == one_a.outputs
        assert one_d.total_messages == one_a.total_messages
        assert one_d.total_rounds == one_a.total_rounds
        two_d = run_two_stage(
            net, payload, stage1_params=params, stage2_k=3, seed=5, scheduler="dense"
        )
        two_a = run_two_stage(
            net, payload, stage1_params=params, stage2_k=3, seed=5, scheduler="active"
        )
        assert two_d.outputs == two_a.outputs
        assert two_d.total_messages == two_a.total_messages
        assert two_d.stage2_edges == two_a.stage2_edges

    def test_runtime_engine_matches_fast_engine_under_active(self):
        net = erdos_renyi(70, 0.12, seed=3)
        fast = t_local_broadcast(net, lambda v: v, radius=3, engine="fast")
        runtime = t_local_broadcast(
            net, lambda v: v, radius=3, engine="runtime", scheduler="active"
        )
        assert fast.collected == runtime.collected
        assert fast.messages.total == runtime.messages.total
        assert fast.messages.per_round == runtime.messages.per_round


class _Sleeper(NodeProgram):
    """Sleeps forever after on_start; counts its steps."""

    steps = 0

    def on_start(self, ctx):
        ctx.sleep_until(None)

    def on_round(self, ctx, inbox):
        type(self).steps += 1


class _TimerProgram(NodeProgram):
    """Wakes at declared rounds only; records the rounds it saw."""

    def __init__(self, wake_at):
        self.seen: list[int] = []
        self._wake_at = wake_at

    def on_start(self, ctx):
        ctx.wake_me_at(self._wake_at)

    def on_round(self, ctx, inbox):
        self.seen.append(ctx.round)
        if ctx.round >= self._wake_at[-1]:
            ctx.halt()

    def output(self):
        return tuple(self.seen)


class TestWakeContract:
    def test_sleeping_nodes_not_stepped_on_empty_rounds(self, path4):
        _Sleeper.steps = 0
        report = run_program(
            path4, lambda n: _Sleeper(), seed=0, fixed_rounds=5, scheduler="active"
        )
        assert _Sleeper.steps == 0
        assert report.rounds == 5
        # dense steps them every round; outputs are still identical
        _Sleeper.steps = 0
        dense = run_program(
            path4, lambda n: _Sleeper(), seed=0, fixed_rounds=5, scheduler="dense"
        )
        assert _Sleeper.steps == 4 * 5
        assert dense.rounds == report.rounds
        assert dense.messages.per_round == report.messages.per_round

    def test_wake_me_at_schedule_is_honoured(self, path4):
        report = run_program(
            path4,
            lambda n: _TimerProgram((2, 5, 7)),
            seed=0,
            scheduler="active",
        )
        assert report.rounds == 7
        assert all(out == (2, 5, 7) for out in report.outputs.values())

    def test_message_wakes_sleeper_early(self):
        net = Network.from_edge_pairs(2, [(0, 1)])

        class Poker(NodeProgram):
            def on_start(self, ctx):
                ctx.send(ctx.ports[0], "poke")
                ctx.halt()

            def on_round(self, ctx, inbox):
                pass

        class Sleepy(NodeProgram):
            def __init__(self):
                self.woken_at: list[tuple[int, int]] = []

            def on_start(self, ctx):
                ctx.wake_me_at((9,))

            def on_round(self, ctx, inbox):
                self.woken_at.append((ctx.round, len(inbox)))
                if ctx.round >= 9:
                    ctx.halt()

            def output(self):
                return tuple(self.woken_at)

        report = run_program(
            net, lambda n: Poker() if n == 0 else Sleepy(), seed=0, scheduler="active"
        )
        # woken once by the message at round 1, again by the timer at 9
        assert report.outputs[1] == ((1, 1), (9, 0))

    def test_sleep_until_past_round_raises(self, path4):
        class Bad(NodeProgram):
            def on_start(self, ctx):
                ctx.sleep_until(0)

            def on_round(self, ctx, inbox):
                pass

        with pytest.raises(ProtocolError):
            run_program(path4, lambda n: Bad(), seed=0, scheduler="active")

    def test_unsorted_bulk_schedule_raises(self, path4):
        class Bad(NodeProgram):
            def on_start(self, ctx):
                ctx.wake_me_at((5, 3))

            def on_round(self, ctx, inbox):
                pass

        with pytest.raises(ProtocolError):
            run_program(path4, lambda n: Bad(), seed=0, scheduler="active")

    def test_unknown_scheduler_rejected(self, path4):
        with pytest.raises(ValueError):
            run_program(path4, lambda n: _Sleeper(), seed=0, scheduler="eager")

    def test_wake_cancels_sleep(self, path4):
        class Napper(NodeProgram):
            def __init__(self):
                self.steps = 0

            def on_start(self, ctx):
                ctx.sleep_until(3)

            def on_round(self, ctx, inbox):
                self.steps += 1
                ctx.wake()  # back to dense stepping
                if ctx.round >= 5:
                    ctx.halt()

            def output(self):
                return self.steps

        report = run_program(
            path4, lambda n: Napper(), seed=0, scheduler="active"
        )
        # slept through rounds 1-2, then stepped 3, 4, 5
        assert all(out == 3 for out in report.outputs.values())
        assert report.rounds == 5


class _ReactiveEcho(NodeProgram):
    """Halts reactively at start; answers every message once."""

    def on_start(self, ctx):
        ctx.halt(reactive=True)

    def on_round(self, ctx, inbox):
        for msg in inbox:
            ctx.send(msg.port, ("echo", msg.payload), tag="echo")


class _Prober(NodeProgram):
    """Sends probes for a few rounds; collects echoes."""

    def __init__(self, rounds):
        self._rounds = rounds
        self.got = []

    def on_start(self, ctx):
        for port in ctx.ports:
            ctx.send(port, 0, tag="probe")

    def on_round(self, ctx, inbox):
        for msg in inbox:
            self.got.append((ctx.round, msg.port, msg.payload))
        if ctx.round < self._rounds:
            for port in ctx.ports:
                ctx.send(port, ctx.round, tag="probe")
        else:
            ctx.halt()

    def output(self):
        return tuple(self.got)


class TestReactiveFaultsFixedRoundsInterplay:
    """Satellite: reactive halt × FaultPlan × fixed_rounds on both
    schedulers."""

    @pytest.mark.parametrize("scheduler", ("dense", "active"))
    @pytest.mark.parametrize("fixed", (None, 0, 3, 6))
    def test_reactive_echo_under_fault_plan(self, star6, scheduler, fixed):
        plan = FaultPlan(
            drop_probability=0.3,
            seed=5,
            rule=lambda r, eid, sender: (r + eid) % 5 == 0,
        )
        report = run_program(
            star6,
            lambda n: _Prober(4) if n == 0 else _ReactiveEcho(),
            seed=2,
            faults=plan,
            fixed_rounds=fixed,
            scheduler=scheduler,
        )
        assert sum(report.messages.per_round) == report.messages.total
        if fixed is not None:
            assert report.rounds == fixed

    @pytest.mark.parametrize("fixed", (None, 0, 3, 6))
    def test_schedulers_agree_under_fault_plan(self, star6, fixed):
        def run(scheduler):
            plan = FaultPlan(
                drop_probability=0.3,
                seed=5,
                rule=lambda r, eid, sender: (r + eid) % 5 == 0,
            )
            return run_program(
                star6,
                lambda n: _Prober(4) if n == 0 else _ReactiveEcho(),
                seed=2,
                faults=plan,
                fixed_rounds=fixed,
                scheduler=scheduler,
            )

        assert_reports_equal(run("dense"), run("active"))

    @pytest.mark.parametrize("scheduler", ("dense", "active"))
    def test_fixed_rounds_discards_final_sends_unmetered(self, path4, scheduler):
        report = run_program(
            path4,
            lambda n: _Prober(10),
            seed=0,
            fixed_rounds=2,
            scheduler=scheduler,
        )
        delivered = sum(len(out) for out in report.outputs.values())
        assert report.messages.total == delivered
