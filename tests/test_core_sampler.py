"""Integration tests for the centralized Sampler driver."""

from __future__ import annotations

import pytest

from repro.analysis import adjacent_pair_stretch, validate_spanner
from repro.core import NodeLabel, SamplerParams, build_spanner
from repro.core.sampler import SamplerRun
from repro.errors import SimulationError
from repro.graphs import complete_graph, dense_gnm, erdos_renyi


class TestBasicInvariants:
    def test_spanner_is_subgraph(self, workload, default_params):
        result = build_spanner(workload, default_params)
        assert result.edges <= set(workload.edge_ids)

    def test_stretch_bound_holds(self, workload, default_params):
        result = build_spanner(workload, default_params)
        report = adjacent_pair_stretch(workload, result.edges)
        assert report.unreachable_pairs == 0
        assert report.max_stretch <= result.stretch_bound

    def test_validation_passes(self, workload, default_params):
        validate_spanner(build_spanner(workload, default_params))

    def test_size_envelope(self, er_medium, default_params):
        result = build_spanner(er_medium, default_params)
        assert result.size <= default_params.size_envelope(er_medium.n)

    def test_populations_strictly_structured(self, er_medium, default_params):
        result = build_spanner(er_medium, default_params)
        populations = result.trace.populations
        assert populations[0] == er_medium.n
        assert len(populations) == default_params.levels
        assert all(p >= 0 for p in populations)

    def test_levels_record_labels_for_all_nodes(self, er_small, default_params):
        result = build_spanner(er_small, default_params)
        level0 = result.trace.level(0)
        assert set(level0.nodes) == set(range(er_small.n))
        assert level0.population == er_small.n


class TestClusterStructure:
    def test_tree_heights_respect_lemma8(self, er_medium):
        params = SamplerParams(k=3, h=2, seed=5)
        result = build_spanner(er_medium, params)
        for level in result.trace.levels:
            bound = (3**level.level - 1) // 2
            for height in level.cluster_heights.values():
                assert height <= bound

    def test_joins_reference_centers(self, er_medium, default_params):
        result = build_spanner(er_medium, default_params)
        for level in result.trace.levels:
            centers = set(level.centers)
            for joiner, center, _eid in level.joins:
                assert center in centers
                assert joiner not in centers

    def test_partition_of_each_level(self, er_medium, default_params):
        result = build_spanner(er_medium, default_params)
        for level in result.trace.levels:
            joined = {v for v, _c, _e in level.joins}
            centers = set(level.centers)
            unclustered = set(level.unclustered)
            population = set(level.nodes)
            if level.level < default_params.k:
                assert joined | centers | unclustered == population
                assert not (joined & centers)
                assert not (joined & unclustered)
                assert not (centers & unclustered)
            else:
                assert unclustered == population

    def test_join_edges_in_spanner(self, er_medium, default_params):
        result = build_spanner(er_medium, default_params)
        for level in result.trace.levels:
            for _j, _c, eid in level.joins:
                assert eid in result.edges

    def test_f_edges_partition_spanner(self, er_medium, default_params):
        result = build_spanner(er_medium, default_params)
        union = set()
        for level in result.trace.levels:
            union |= level.f_edges
        assert union == set(result.edges)


class TestDegenerateInputs:
    def test_single_node(self):
        from repro.local.network import Network

        net = Network.from_edge_pairs(1, [])
        result = build_spanner(net, SamplerParams(k=1, h=1, seed=1))
        assert result.size == 0

    def test_disconnected_components(self, disconnected, default_params):
        result = build_spanner(disconnected, default_params)
        # per-component guarantee: every adjacent pair connected within bound
        report = adjacent_pair_stretch(disconnected, result.edges)
        assert report.unreachable_pairs == 0

    def test_star_graph(self, star6, default_params):
        result = build_spanner(star6, default_params)
        # a star is its own only spanner
        assert result.edges == set(star6.edge_ids)

    def test_path_graph(self, path4, default_params):
        result = build_spanner(path4, default_params)
        assert result.edges == set(path4.edge_ids)

    def test_complete_graph_sparsifies(self):
        net = complete_graph(90)
        params = SamplerParams(k=1, h=2, seed=3, c_query=0.4, c_target=0.5)
        result = build_spanner(net, params)
        assert result.size < net.m


class TestStepwiseDriver:
    def test_levels_must_run_in_order(self, er_small, default_params):
        run = SamplerRun(er_small, default_params)
        with pytest.raises(SimulationError):
            run.run_level(1)

    def test_stepwise_matches_batch(self, er_small, default_params):
        run = SamplerRun(er_small, default_params)
        for j in range(default_params.levels):
            run.run_level(j)
        stepwise = run.result()
        batch = build_spanner(er_small, default_params)
        assert stepwise.edges == batch.edges


class TestSeedSensitivity:
    def test_same_seed_identical(self, er_small, default_params):
        a = build_spanner(er_small, default_params)
        b = build_spanner(er_small, default_params)
        assert a.edges == b.edges
        assert a.trace.signature() == b.trace.signature()

    def test_different_seed_differs(self, er_small):
        a = build_spanner(er_small, SamplerParams(k=2, h=2, seed=1))
        b = build_spanner(er_small, SamplerParams(k=2, h=2, seed=2))
        assert a.edges != b.edges or a.trace.signature() != b.trace.signature()


class TestPaperExactMode:
    def test_small_run_is_valid(self, er_small):
        params = SamplerParams.paper_exact(k=1, h=1, c=1.0, seed=3)
        result = build_spanner(er_small, params)
        validate_spanner(result, check_size_envelope=False)

    def test_paper_budgets_query_everything_at_small_n(self, er_small):
        params = SamplerParams.paper_exact(k=1, h=1, c=2.0, seed=3)
        result = build_spanner(er_small, params)
        # at this scale the paper constants degenerate to S = E
        assert result.edges == set(er_small.edge_ids)


class TestFinishedRegistry:
    def test_finished_clusters_recorded(self, er_medium, default_params):
        result = build_spanner(er_medium, default_params)
        finished = result.trace.finished
        unclustered_total = sum(
            len(level.unclustered) for level in result.trace.levels
        )
        assert len(finished) == unclustered_total
        for record in finished.values():
            assert record.label in (NodeLabel.LIGHT, NodeLabel.HEAVY, NodeLabel.STRANDED)
