"""Unit tests for TrialMachine — the heart of Cluster_j's first step."""

from __future__ import annotations

import random

import pytest

from repro.core import SamplerParams
from repro.core.trials import NodeLabel, QueryResult, TrialMachine
from repro.errors import ProtocolError


def make_machine(
    edges,
    *,
    k=1,
    h=2,
    c_query=0.1,
    c_target=0.4,
    n=1024,
    seed=5,
    exhaustive=False,
) -> TrialMachine:
    params = SamplerParams(
        k=k, h=h, c_query=c_query, c_target=c_target, seed=seed,
        exhaustive_small_pools=exhaustive,
    )
    return TrialMachine(
        vid=0,
        level=0,
        incident_edges=edges,
        params=params,
        n=n,
        rng=random.Random(seed),
    )


def simple_results(queried, neighbor_of, bundles, active=lambda nbr: True):
    return [
        QueryResult(
            eid=eid,
            neighbor=neighbor_of(eid),
            neighbor_edges=bundles[neighbor_of(eid)],
            active=active(neighbor_of(eid)),
        )
        for eid in queried
    ]


class TestProtocol:
    def test_deliver_without_trial_raises(self):
        machine = make_machine([0, 1, 2])
        with pytest.raises(ProtocolError):
            machine.deliver([])

    def test_double_begin_raises(self):
        machine = make_machine(list(range(100)))
        machine.begin_trial()
        with pytest.raises(ProtocolError):
            machine.begin_trial()

    def test_label_mid_trial_raises(self):
        machine = make_machine(list(range(100)))
        machine.begin_trial()
        with pytest.raises(ProtocolError):
            _ = machine.label

    def test_duplicate_incident_edges_rejected(self):
        with pytest.raises(ProtocolError):
            make_machine([1, 1, 2])

    def test_empty_pool_is_light_immediately(self):
        machine = make_machine([])
        assert not machine.wants_trial()
        assert machine.label is NodeLabel.LIGHT
        assert machine.spanner_edges == frozenset()


class TestPeeling:
    def test_parallel_edges_peeled(self):
        # neighbor 1 owns edges 0..9; neighbor 2 owns edge 10
        bundles = {1: tuple(range(10)), 2: (10,)}
        neighbor_of = lambda eid: 1 if eid < 10 else 2
        machine = make_machine(list(range(11)), exhaustive=True)
        queried = machine.begin_trial()
        machine.deliver(simple_results(queried, neighbor_of, bundles))
        assert machine.pool_size == 0
        assert machine.label is NodeLabel.LIGHT
        # exactly one edge per neighbor, and it is the minimum queried one
        assert machine.f_active == {1: 0, 2: 10}

    def test_inactive_neighbor_not_in_f(self):
        bundles = {1: (0, 1), 2: (2,)}
        neighbor_of = lambda eid: 1 if eid < 2 else 2
        machine = make_machine([0, 1, 2], exhaustive=True)
        queried = machine.begin_trial()
        machine.deliver(
            simple_results(queried, neighbor_of, bundles, active=lambda nbr: nbr != 1)
        )
        assert machine.f_active == {2: 2}
        assert machine.f_inactive == {1: 0}
        assert machine.spanner_edges == frozenset({2})

    def test_rediscovery_raises(self):
        bundles = {1: (0,)}  # wrong: neighbor claims only edge 0, owns 0 and 1
        machine = make_machine([0, 1], exhaustive=True)
        queried = machine.begin_trial()
        with pytest.raises(ProtocolError):
            machine.deliver(
                [
                    QueryResult(eid=0, neighbor=1, neighbor_edges=(0,)),
                    QueryResult(eid=1, neighbor=1, neighbor_edges=(0, 1)),
                ]
            )

    def test_query_edge_missing_from_report_raises(self):
        machine = make_machine([0], exhaustive=True)
        machine.begin_trial()
        with pytest.raises(ProtocolError):
            machine.deliver([QueryResult(eid=0, neighbor=1, neighbor_edges=(5,))])


class TestLabels:
    def test_heavy_when_target_reached(self):
        # many singleton neighbors; budget covers the target quickly
        n_neighbors = 200
        bundles = {i + 1: (i,) for i in range(n_neighbors)}
        neighbor_of = lambda eid: eid + 1
        machine = make_machine(list(range(n_neighbors)), c_query=0.2, c_target=0.3)
        while machine.wants_trial():
            queried = machine.begin_trial()
            machine.deliver(simple_results(queried, neighbor_of, bundles))
        assert machine.label is NodeLabel.HEAVY
        assert len(machine.f_active) >= machine.target
        assert machine.pool_size > 0

    def test_light_when_pool_drains(self):
        bundles = {i + 1: (i,) for i in range(5)}
        neighbor_of = lambda eid: eid + 1
        machine = make_machine(list(range(5)), exhaustive=True)
        while machine.wants_trial():
            queried = machine.begin_trial()
            machine.deliver(simple_results(queried, neighbor_of, bundles))
        assert machine.label is NodeLabel.LIGHT
        assert len(machine.f_active) == 5

    def test_stranded_when_budget_too_small(self):
        # One heavy parallel neighbor hides everyone else and the budget
        # is too small to find the target number of distinct neighbors.
        heavy = 5000
        bundles = {1: tuple(range(heavy))}
        for i in range(60):
            bundles[i + 2] = (heavy + i,)
        neighbor_of = lambda eid: 1 if eid < heavy else eid - heavy + 2
        machine = make_machine(
            list(range(heavy + 60)), c_query=0.02, c_target=0.9, h=1
        )
        while machine.wants_trial():
            queried = machine.begin_trial()
            machine.deliver(simple_results(queried, neighbor_of, bundles))
        assert machine.label is NodeLabel.STRANDED

    def test_trials_capped_at_2h(self):
        machine = make_machine(list(range(4000)), c_query=0.02, c_target=5.0, h=2)
        bundles = {eid + 1: (eid,) for eid in range(4000)}
        neighbor_of = lambda eid: eid + 1
        while machine.wants_trial():
            queried = machine.begin_trial()
            machine.deliver(simple_results(queried, neighbor_of, bundles))
        assert machine.trials_run <= 2 * 2


class TestDeterminism:
    def test_same_seed_same_queries(self):
        a = make_machine(list(range(500)), seed=9)
        b = make_machine(list(range(500)), seed=9)
        assert a.begin_trial() == b.begin_trial()

    def test_different_seed_differs(self):
        a = make_machine(list(range(500)), seed=9)
        b = make_machine(list(range(500)), seed=10)
        assert a.begin_trial() != b.begin_trial()

    def test_stats_recorded(self):
        machine = make_machine(list(range(50)), exhaustive=True)
        queried = machine.begin_trial()
        machine.deliver(
            simple_results(queried, lambda e: e + 1, {e + 1: (e,) for e in range(50)})
        )
        stats = machine.stats[0]
        assert stats.queried_eids == tuple(queried)
        assert stats.new_neighbors == len(queried)
        assert stats.peeled_edges == len(queried)
