"""Churn engine + self-healing repair (repro.dynamic, DESIGN.md §3.9)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.validation import validate_spanner
from repro.core import SamplerParams, build_spanner
from repro.core.distributed import build_spanner_distributed
from repro.dynamic import (
    ChurnPlan,
    MutationLog,
    apply_churn,
    churn_sequence,
    repair_spanner,
)
from repro.dynamic.repair import RepairRun
from repro.errors import ConfigurationError
from repro.graphs import barabasi_albert, erdos_renyi, torus
from repro.local.network import Network

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_PARAMS = SamplerParams(k=2, h=2, seed=1)


def _mixed_plan(seed: int, rate: float, epochs: int = 1) -> ChurnPlan:
    return ChurnPlan(
        seed=seed,
        epochs=epochs,
        edge_removal=rate,
        edge_addition=rate / 2,
        node_crash=rate / 10,
        node_recovery=0.5,
    )


class TestChurnEngine:
    def test_apply_churn_is_deterministic(self, er_medium):
        plan = _mixed_plan(3, 0.1)
        a_net, a_log = apply_churn(er_medium, plan, epoch=0)
        b_net, b_log = apply_churn(er_medium, plan, epoch=0)
        assert a_net.fingerprint() == b_net.fingerprint()
        assert a_log == b_log
        assert a_log.removed_edges  # 10% of a 120-node gnp is never empty

    def test_epochs_draw_independent_coins(self, er_medium):
        plan = _mixed_plan(3, 0.1)
        _, log0 = apply_churn(er_medium, plan, epoch=0)
        _, log1 = apply_churn(er_medium, plan, epoch=1)
        assert log0.removed_edges != log1.removed_edges

    def test_log_chains_fingerprints(self, er_medium):
        plan = _mixed_plan(5, 0.08, epochs=3)
        steps = churn_sequence(er_medium, plan)
        assert steps[0][1].parent_fingerprint == er_medium.fingerprint()
        for (net_a, log_a), (_, log_b) in zip(steps, steps[1:]):
            assert log_a.child_fingerprint == net_a.fingerprint()
            assert log_a.child_fingerprint == log_b.parent_fingerprint

    def test_crash_isolates_and_recovery_reattaches(self):
        net = erdos_renyi(80, 0.1, seed=2)
        crash = ChurnPlan(seed=9, edge_removal=0.0, node_crash=0.6)
        after, log = apply_churn(net, crash, epoch=0)
        assert log.crashed
        for v in log.crashed:
            assert after.degree(v) == 0
        assert after.n == net.n  # the universe is fixed
        recover = ChurnPlan(seed=9, edge_removal=0.0, node_recovery=1.0)
        healed, rlog = apply_churn(after, recover, epoch=1)
        assert rlog.recovered
        for v in rlog.recovered:
            assert healed.degree(v) > 0
            assert after.degree(v) == 0  # recovered means previously isolated

    def test_added_edges_use_fresh_ids(self, er_medium):
        plan = ChurnPlan(seed=1, edge_removal=0.3, edge_addition=0.2)
        after, log = apply_churn(er_medium, plan, epoch=0)
        top = max(er_medium.edge_ids)
        assert log.added_edges
        for eid, u, v in log.added_edges:
            assert eid > top
            assert u <= v
        # no parallel edges: every (u, v) pair occurs once
        _, ep_u, ep_v = after.endpoints_flat()
        pairs = list(zip(ep_u.tolist(), ep_v.tolist()))
        assert len(pairs) == len(set(pairs))

    def test_noop_epoch_returns_same_object(self, er_medium):
        plan = ChurnPlan(seed=1, edge_removal=0.0)
        after, log = apply_churn(er_medium, plan, epoch=0)
        assert after is er_medium
        assert log.is_noop
        assert log.parent_fingerprint == log.child_fingerprint

    def test_corruption_windows(self):
        plan = ChurnPlan(seed=4, epochs=5, corruption=((1, 3, 0.2),))
        assert plan.fault_plan(0).is_noop
        assert plan.fault_plan(1).corrupt_probability == 0.2
        assert plan.fault_plan(2).corrupt_probability == 0.2
        assert plan.fault_plan(3).is_noop
        # per-epoch seeds differ, so corruption coins never repeat
        assert plan.fault_plan(1).seed != plan.fault_plan(2).seed

    def test_plan_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnPlan(edge_removal=1.5)
        with pytest.raises(ConfigurationError):
            ChurnPlan(epochs=0)
        with pytest.raises(ConfigurationError):
            ChurnPlan(corruption=((3, 3, 0.5),))
        with pytest.raises(ConfigurationError):
            ChurnPlan(corruption=((0, 2, 0.0),))


@st.composite
def churned_pair(draw):
    """A random small network plus one churn epoch over it."""
    n = draw(st.integers(min_value=8, max_value=60))
    p = draw(st.floats(min_value=0.05, max_value=0.3))
    net = erdos_renyi(n, p, seed=draw(st.integers(0, 1000)))
    plan = ChurnPlan(
        seed=draw(st.integers(0, 1000)),
        edge_removal=draw(st.sampled_from([0.0, 0.02, 0.1, 0.5])),
        edge_addition=draw(st.sampled_from([0.0, 0.05])),
        node_crash=draw(st.sampled_from([0.0, 0.05])),
        node_recovery=0.5,
    )
    return net, plan


class TestFingerprintProperty:
    @given(pair=churned_pair())
    @_SETTINGS
    def test_fingerprint_changes_iff_epoch_mutates(self, pair):
        """Network.fingerprint() moves exactly when the edge set does."""
        net, plan = pair
        after, log = apply_churn(net, plan, epoch=0)
        mutated = bool(log.removed_edges or log.added_edges)
        assert log.is_noop == (not mutated)
        if mutated:
            assert after.fingerprint() != net.fingerprint()
        else:
            assert after.fingerprint() == net.fingerprint()
        assert log.child_fingerprint == after.fingerprint()


class TestRepair:
    @pytest.mark.parametrize(
        "family",
        [
            lambda: erdos_renyi(150, 0.08, seed=5),
            lambda: torus(12, 12),
            lambda: barabasi_albert(150, 3, seed=5),
        ],
        ids=["gnp", "torus", "ba"],
    )
    @pytest.mark.parametrize("rate", [0.02, 0.1, 0.5])
    def test_repair_equals_fresh_build(self, family, rate):
        net = family()
        parent = build_spanner(net, _PARAMS)
        child, log = apply_churn(net, _mixed_plan(7, rate), epoch=0)
        if log.is_noop:
            pytest.skip("epoch was a no-op at this rate")
        repaired = repair_spanner(parent, child, log)
        fresh = build_spanner(child, _PARAMS)
        assert repaired == fresh  # full equality: edges, trace, everything
        assert repaired.provenance == (net.fingerprint(),)
        validate_spanner(repaired)

    @given(
        seed=st.integers(0, 500),
        rate=st.sampled_from([0.02, 0.1, 0.3]),
        n=st.integers(min_value=20, max_value=80),
    )
    @_SETTINGS
    def test_repair_equals_rebuild_property(self, seed, rate, n):
        net = erdos_renyi(n, min(0.95, 8 / max(1, n - 1)), seed=seed)
        parent = build_spanner(net, _PARAMS)
        child, log = apply_churn(net, _mixed_plan(seed + 1, rate), epoch=0)
        if log.is_noop:
            return
        assert repair_spanner(parent, child, log) == build_spanner(child, _PARAMS)

    def test_repair_across_multi_epoch_chain(self):
        net = erdos_renyi(150, 0.08, seed=6)
        parent = build_spanner(net, _PARAMS)
        steps = churn_sequence(net, _mixed_plan(11, 0.05, epochs=3))
        final = steps[-1][0]
        logs = [log for _, log in steps]
        repaired = repair_spanner(parent, final, logs)
        assert repaired == build_spanner(final, _PARAMS)
        assert repaired.provenance == (net.fingerprint(),)

    def test_chained_repairs_accumulate_provenance(self):
        net = erdos_renyi(120, 0.08, seed=8)
        spanner = build_spanner(net, _PARAMS)
        fingerprints = []
        for epoch in range(3):
            fingerprints.append(net.fingerprint())
            net, log = apply_churn(net, _mixed_plan(13, 0.05, epochs=3), epoch)
            spanner = repair_spanner(spanner, net, log)
        assert spanner.provenance == tuple(fingerprints)
        assert spanner == build_spanner(net, _PARAMS)

    def test_repair_from_distributed_parent(self):
        """The store's cached artifacts are distributed builds; repair
        must replay from their marker-laden traces just as well."""
        net = erdos_renyi(150, 0.08, seed=9)
        parent = build_spanner_distributed(net, _PARAMS)
        child, log = apply_churn(net, _mixed_plan(17, 0.05), epoch=0)
        repaired = repair_spanner(parent, child, log)
        assert repaired == build_spanner(child, _PARAMS)
        rebuilt = build_spanner_distributed(child, _PARAMS)
        assert repaired.edges == rebuilt.edges
        assert repaired.trace.signature() == rebuilt.trace.signature()
        assert repaired.messages is None  # repair meters nothing

    def test_repair_actually_replays(self):
        """At low churn most cluster machines come from the parent trace."""
        net = erdos_renyi(300, 0.04, seed=10)
        parent = build_spanner(net, _PARAMS)
        child, log = apply_churn(
            net, ChurnPlan(seed=19, edge_removal=0.01), epoch=0
        )
        run = RepairRun(
            child, _PARAMS, parent=parent, touched=log.touched_nodes()
        )
        result = run.run()
        assert result == build_spanner(child, _PARAMS)
        assert run.replayed_clusters > run.fresh_clusters

    def test_repair_refuses_broken_chains(self, er_medium):
        parent = build_spanner(er_medium, _PARAMS)
        child, log = apply_churn(er_medium, _mixed_plan(23, 0.1), epoch=0)
        other, other_log = apply_churn(er_medium, _mixed_plan(29, 0.1), epoch=0)
        with pytest.raises(ConfigurationError):
            repair_spanner(parent, child, [])  # empty chain
        with pytest.raises(ConfigurationError):
            repair_spanner(parent, child, other_log)  # chain ends elsewhere
        grandchild, glog = apply_churn(child, _mixed_plan(31, 0.1), epoch=1)
        with pytest.raises(ConfigurationError):
            repair_spanner(parent, grandchild, glog)  # missing first link
        with pytest.raises(ConfigurationError):
            repair_spanner(parent, grandchild, [glog, log])  # wrong order

    def test_repair_refuses_wrong_params(self, er_medium):
        parent = build_spanner(er_medium, _PARAMS)
        child, log = apply_churn(er_medium, _mixed_plan(37, 0.1), epoch=0)
        with pytest.raises(ConfigurationError):
            RepairRun(
                child,
                SamplerParams(k=2, h=3, seed=1),
                parent=parent,
                touched=frozenset(),
            )


class TestNetworkMutated:
    def test_remove_unknown_eid_refused(self, path4):
        with pytest.raises(Exception):
            path4.mutated(remove=[999])

    def test_add_self_loop_refused(self, path4):
        with pytest.raises(Exception):
            path4.mutated(add=[(100, 2, 2)])

    def test_add_duplicate_eid_refused(self, path4):
        with pytest.raises(Exception):
            path4.mutated(add=[(0, 0, 3)])  # eid 0 survives

    def test_roundtrip_remove_then_add_back(self, er_medium):
        eid_row, ep_u, ep_v = er_medium.endpoints_flat()
        victim = er_medium.edge_ids[0]
        u, v = er_medium.endpoints(victim)
        without = er_medium.mutated(remove=[victim])
        assert without.m == er_medium.m - 1
        restored = without.mutated(add=[(victim, u, v)])
        assert restored.fingerprint() == er_medium.fingerprint()


class TestProvenanceSerialization:
    def test_provenance_roundtrips_through_store(self, tmp_path, er_medium):
        parent = build_spanner_distributed(er_medium, _PARAMS)
        child, log = apply_churn(er_medium, _mixed_plan(41, 0.1), epoch=0)
        repaired = repair_spanner(parent, child, log)
        path = tmp_path / "repaired.npz"
        repaired.to_npz(path)
        loaded = type(repaired).from_npz(path, child)
        assert loaded == repaired
        assert loaded.provenance == repaired.provenance == (er_medium.fingerprint(),)

    def test_fresh_builds_have_empty_provenance(self, er_medium, tmp_path):
        fresh = build_spanner_distributed(er_medium, _PARAMS)
        assert fresh.provenance == ()
        path = tmp_path / "fresh.npz"
        fresh.to_npz(path)
        assert type(fresh).from_npz(path, er_medium).provenance == ()
