"""Shared fixtures: small, deterministic networks and parameter sets."""

from __future__ import annotations

import pytest

from repro.core.params import SamplerParams
from repro.graphs import caveman, complete_graph, erdos_renyi, grid, hypercube, torus
from repro.local.network import Network


@pytest.fixture
def path4() -> Network:
    """0-1-2-3 path."""
    return Network.from_edge_pairs(4, [(0, 1), (1, 2), (2, 3)], name="path4")


@pytest.fixture
def triangle() -> Network:
    return Network.from_edge_pairs(3, [(0, 1), (1, 2), (0, 2)], name="triangle")


@pytest.fixture
def star6() -> Network:
    """Center 0 with five leaves."""
    return Network.from_edge_pairs(6, [(0, i) for i in range(1, 6)], name="star6")


@pytest.fixture
def er_small() -> Network:
    return erdos_renyi(60, 0.15, seed=3)


@pytest.fixture
def er_medium() -> Network:
    return erdos_renyi(120, 0.12, seed=4)


@pytest.fixture
def dense_small() -> Network:
    return complete_graph(40)


@pytest.fixture
def disconnected() -> Network:
    """Two triangles with no crossing edges, plus one isolated node."""
    return Network.from_edge_pairs(
        7,
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        name="two-triangles",
    )


@pytest.fixture
def default_params() -> SamplerParams:
    return SamplerParams(k=2, h=2, seed=11)


@pytest.fixture
def tiny_params() -> SamplerParams:
    return SamplerParams(k=1, h=1, seed=7)


@pytest.fixture(
    params=[
        ("er", lambda: erdos_renyi(50, 0.2, seed=1)),
        ("hypercube", lambda: hypercube(5)),
        ("torus", lambda: torus(6, 6)),
        ("grid", lambda: grid(5, 7)),
        ("caveman", lambda: caveman(5, 6)),
    ],
    ids=lambda p: p[0],
)
def workload(request) -> Network:
    """A small family of structurally diverse graphs."""
    return request.param[1]()
