"""Tests for the Figure-1 renderer, the global-task module, and examples."""

from __future__ import annotations

import pathlib
import py_compile
import runpy

import pytest

from repro.core import SamplerParams, build_spanner
from repro.core.figure1 import render_level, render_run
from repro.graphs import dense_gnm, erdos_renyi
from repro.simulate.global_tasks import compute_global, elect_leader, graph_diameter

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


class TestFigure1Renderer:
    @pytest.fixture(scope="class")
    def trace(self):
        net = dense_gnm(40, 300, seed=4)
        return build_spanner(net, SamplerParams(k=2, h=2, seed=12)).trace

    def test_renders_every_level(self, trace):
        text = render_run(trace)
        for j in range(len(trace.levels)):
            assert f"Cluster_{j}" in text

    def test_panels_present(self, trace):
        text = render_level(trace.levels[0], trace.params.k)
        for panel in ("(a)", "(b)", "(c)", "(d)", "(e)", "(f)"):
            assert panel in text

    def test_final_level_has_no_contraction(self, trace):
        text = render_level(trace.levels[-1], trace.params.k)
        assert "final level" in text

    def test_header_mentions_params(self, trace):
        assert f"k={trace.params.k}" in render_run(trace)


class TestGlobalTasks:
    @pytest.fixture(scope="class")
    def net(self):
        return erdos_renyi(50, 0.25, seed=5)

    def test_diameter(self, net):
        import networkx as nx

        assert graph_diameter(net) == nx.diameter(net.to_networkx())

    def test_diameter_rejects_disconnected(self, disconnected):
        with pytest.raises(ValueError):
            graph_diameter(disconnected)

    def test_every_node_learns_global_max(self, net):
        inputs = {v: (v * 37) % 101 for v in net.nodes()}
        result = compute_global(
            net, lambda known: max(known.values()), inputs=inputs, seed=2
        )
        expected = max(inputs.values())
        assert all(out == expected for out in result.outputs.values())

    def test_arbitrary_function_of_all_inputs(self, net):
        result = compute_global(net, lambda known: sorted(known)[:3], seed=2)
        assert all(out == [0, 1, 2] for out in result.outputs.values())

    def test_leader_election(self, net):
        result = elect_leader(net, seed=3)
        assert all(out == 0 for out in result.outputs.values())
        assert result.total_messages == (
            result.construction_messages + result.flood_messages
        )
        assert result.total_rounds > 0


class TestExamples:
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_examples_compile(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_at_least_four_examples_exist(self):
        assert len(EXAMPLES) >= 4

    def test_figure1_example_runs(self, capsys):
        example = next(p for p in EXAMPLES if "figure1" in p.name)
        runpy.run_path(str(example), run_name="__main__")
        out = capsys.readouterr().out
        assert "Cluster_0" in out
        assert "final spanner" in out
