"""Chaos injection: every fault counted, every response still exact.

The degraded-but-correct contract (ISSUE 9): a :class:`ChaosPlan`
injects transient/persistent OSErrors, corrupt reads, slow loads and
stale locks into the store's read path; each injection surfaces as a
counted metric and the response — whenever one is produced — stays
bit-identical to a cold :func:`run_one_stage`.
"""

from __future__ import annotations

import pytest

from repro.algorithms import BfsLayers, MinIdAggregation
from repro.core import SamplerParams
from repro.errors import ConfigurationError
from repro.graphs import erdos_renyi
from repro.service import SimulationService
from repro.service.chaos import CHAOS_ENV_VAR, ChaosPlan, chaos_from_env
from repro.simulate import run_one_stage
from repro.store import ArtifactStore

PARAMS = SamplerParams(k=1, h=2, seed=13)


@pytest.fixture
def net():
    return erdos_renyi(40, 0.15, seed=8)


class TestChaosPlan:
    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan(transient=1.5)
        with pytest.raises(ConfigurationError):
            ChaosPlan(corrupt=-0.1)
        with pytest.raises(ConfigurationError):
            ChaosPlan(slow_seconds=-1.0)

    def test_noop_detection(self):
        assert ChaosPlan().is_noop
        assert ChaosPlan(seed=7, slow_seconds=3.0).is_noop
        assert not ChaosPlan(transient=0.1).is_noop

    def test_decisions_are_deterministic(self):
        a = ChaosPlan(seed=5, transient=0.5, corrupt=0.2, slow=0.3)
        b = ChaosPlan(seed=5, transient=0.5, corrupt=0.2, slow=0.3)
        for tick in range(50):
            assert a.load_fault("k1", tick) == b.load_fault("k1", tick)
            assert a.load_delay("k1", tick) == b.load_delay("k1", tick)

    def test_seed_changes_the_draw(self):
        a = ChaosPlan(seed=1, transient=0.5)
        b = ChaosPlan(seed=2, transient=0.5)
        draws_a = [a.load_fault("k", t) for t in range(64)]
        draws_b = [b.load_fault("k", t) for t in range(64)]
        assert draws_a != draws_b

    def test_persistent_curse_ignores_tick(self):
        """A persistently cursed key fails every retry, not a coin per
        attempt — that is what separates it from transient."""
        plan = ChaosPlan(seed=0, persistent=0.5)
        cursed = [k for k in ("a", "b", "c", "d", "e", "f")
                  if plan.load_fault(k, 0) == "oserror"]
        assert cursed  # at 0.5 over six keys, vanishing odds of none
        for key in cursed:
            assert all(
                plan.load_fault(key, tick) == "oserror" for tick in range(20)
            )

    def test_certain_rates(self):
        assert ChaosPlan(transient=1.0).load_fault("k", 3) == "oserror"
        assert ChaosPlan(corrupt=1.0).load_fault("k", 3) == "corrupt"
        assert ChaosPlan(slow=1.0, slow_seconds=0.5).load_delay("k", 3) == 0.5
        assert ChaosPlan(stale_lock=1.0).plant_stale_lock("k", 3)


class TestSpecParsing:
    def test_roundtrip(self):
        plan = ChaosPlan.parse("transient=0.3,corrupt=0.1,seed=7")
        assert plan == ChaosPlan(seed=7, transient=0.3, corrupt=0.1)

    def test_whitespace_and_empty_parts_tolerated(self):
        plan = ChaosPlan.parse(" slow = 0.2 , , slow_seconds = 0.005 ")
        assert plan == ChaosPlan(slow=0.2, slow_seconds=0.005)

    def test_unknown_field_refused(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan.parse("transientt=0.3")

    def test_bad_value_refused(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan.parse("transient=lots")

    def test_env_hook(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
        assert chaos_from_env() is None
        monkeypatch.setenv(CHAOS_ENV_VAR, "")
        assert chaos_from_env() is None
        monkeypatch.setenv(CHAOS_ENV_VAR, "seed=9")  # all rates zero
        assert chaos_from_env() is None
        monkeypatch.setenv(CHAOS_ENV_VAR, "transient=0.4,seed=9")
        assert chaos_from_env() == ChaosPlan(seed=9, transient=0.4)

    def test_store_picks_up_env_plan(self, net, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "corrupt=1.0")
        store = ArtifactStore(tmp_path)
        assert store.chaos == ChaosPlan(corrupt=1.0)


class TestInjectedFaults:
    def _seeded(self, tmp_path, net):
        ArtifactStore(tmp_path).fetch_spanner(net, PARAMS)

    def test_transient_faults_counted_and_healed(self, net, tmp_path):
        self._seeded(tmp_path, net)
        store = ArtifactStore(
            tmp_path, chaos=ChaosPlan(seed=3, transient=0.5), retries=8
        )
        result, info = store.fetch_spanner(net, PARAMS)
        snap = store.stats.snapshot()
        # At 0.5 over 9 attempts the read heals within the retry budget.
        assert info.source == "disk"
        assert snap["retries"] >= 1
        assert snap["chaos_injected"] == snap["retries"]

    def test_persistent_curse_degrades_to_rebuild(self, net, tmp_path):
        self._seeded(tmp_path, net)
        store = ArtifactStore(tmp_path, chaos=ChaosPlan(persistent=1.0))
        result, info = store.fetch_spanner(net, PARAMS)
        snap = store.stats.snapshot()
        assert info.source == "built"  # degraded, never raised
        assert snap["retries"] == store.retries
        assert snap["misses"] == 1

    def test_corrupt_reads_counted_as_corrupt(self, net, tmp_path):
        self._seeded(tmp_path, net)
        store = ArtifactStore(tmp_path, chaos=ChaosPlan(corrupt=1.0))
        result, info = store.fetch_spanner(net, PARAMS)
        assert info.source == "built"
        assert store.stats.corrupt == 1

    def test_slow_loads_counted(self, net, tmp_path):
        self._seeded(tmp_path, net)
        store = ArtifactStore(
            tmp_path, chaos=ChaosPlan(slow=1.0, slow_seconds=0.001)
        )
        result, info = store.fetch_spanner(net, PARAMS)
        assert info.source == "disk"  # slow, but intact
        assert store.stats.chaos_injected >= 1

    def test_stale_lock_injection_exercises_reclamation(self, net, tmp_path):
        store = ArtifactStore(tmp_path, chaos=ChaosPlan(stale_lock=1.0))
        result, info = store.fetch_spanner(net, PARAMS)
        assert info.source == "built"
        assert store.stats.lock_reclaimed == 1

    def test_responses_bit_identical_under_chaos(self, net, tmp_path):
        """The whole point: chaos costs rebuilds, never changes answers."""
        reference = run_one_stage(
            net, MinIdAggregation(2), params=PARAMS, seed=0
        )
        self._seeded(tmp_path, net)
        store = ArtifactStore(
            tmp_path,
            chaos=ChaosPlan(
                seed=11, transient=0.4, corrupt=0.2, slow=0.2,
                slow_seconds=0.0, stale_lock=0.3,
            ),
            backoff=0.0001,
            backoff_seed=4,
        )
        service = SimulationService(net, store=store, params=PARAMS, seed=0)
        for _ in range(4):
            response = service.submit(MinIdAggregation(2))
            assert response.report.outputs == reference.outputs
        bfs = service.submit(BfsLayers(0, 2))
        assert bfs.report.outputs == run_one_stage(
            net, BfsLayers(0, 2), params=PARAMS, seed=0
        ).outputs
        assert service.metrics.retries == store.stats.retries
