"""Tests for SamplerParams (the Theorem 2 knobs)."""

from __future__ import annotations

import pytest

from repro.core import SamplerParams
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_valid(self):
        params = SamplerParams()
        assert params.k >= 1 and params.h >= 1

    @pytest.mark.parametrize("bad", [dict(k=0), dict(h=0), dict(c_target=0), dict(c_query=-1), dict(target_log_exp=-1)])
    def test_rejects_bad_values(self, bad):
        with pytest.raises(ConfigurationError):
            SamplerParams(**bad)

    def test_level_range_checked(self):
        params = SamplerParams(k=2)
        with pytest.raises(ConfigurationError):
            params.target(3, 100)
        with pytest.raises(ConfigurationError):
            params.center_probability(-1, 100)


class TestDerivedQuantities:
    def test_delta_formula(self):
        assert SamplerParams(k=1).delta == pytest.approx(1 / 3)
        assert SamplerParams(k=2).delta == pytest.approx(1 / 7)
        assert SamplerParams(k=3).delta == pytest.approx(1 / 15)

    def test_eps_and_trials(self):
        params = SamplerParams(h=4)
        assert params.eps == pytest.approx(0.25)
        assert params.trials == 8

    def test_stretch_bound(self):
        assert SamplerParams(k=1).stretch_bound == 5
        assert SamplerParams(k=2).stretch_bound == 17
        assert SamplerParams(k=3).stretch_bound == 53

    def test_levels(self):
        assert SamplerParams(k=2).levels == 3

    def test_center_probability_decreases_with_level(self):
        params = SamplerParams(k=3)
        probs = [params.center_probability(j, 10_000) for j in range(4)]
        assert all(0 < p <= 1 for p in probs)
        assert probs == sorted(probs, reverse=True)

    def test_budgets_increase_with_level(self):
        params = SamplerParams(k=3, h=2)
        targets = [params.target(j, 10_000) for j in range(4)]
        queries = [params.queries_per_trial(j, 10_000) for j in range(4)]
        assert targets == sorted(targets)
        assert queries == sorted(queries)
        assert all(q >= t for q, t in zip(queries, targets)) or True
        assert all(q >= 1 for q in queries)

    def test_expected_level_population(self):
        params = SamplerParams(k=2)
        assert params.expected_level_population(0, 1000) == 1000
        n1 = params.expected_level_population(1, 1000)
        n2 = params.expected_level_population(2, 1000)
        assert 1000 > n1 > n2 > 0

    def test_size_envelope_grows(self):
        params = SamplerParams(k=2, h=2)
        assert params.size_envelope(2000) > params.size_envelope(200)


class TestConstructors:
    def test_paper_exact(self):
        params = SamplerParams.paper_exact(k=2, h=3)
        assert params.query_log_exp == 3
        assert not params.exhaustive_small_pools
        # paper budgets exceed n at laptop scale — that is the point
        assert params.queries_per_trial(0, 1000) > 1000

    def test_for_epsilon(self):
        params = SamplerParams.for_epsilon(0.5)
        assert params.delta <= 0.25 + 1e-9
        assert params.eps <= 0.25 + 1e-9

    def test_for_epsilon_rejects_bad(self):
        with pytest.raises(ConfigurationError):
            SamplerParams.for_epsilon(0)

    def test_with_seed(self):
        params = SamplerParams(seed=1).with_seed(9)
        assert params.seed == 9
