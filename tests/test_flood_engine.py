"""Engine-equivalence tests for the fast flood (DESIGN.md §3.5).

The fast engine derives :class:`FloodReport` from CSR frontier sweeps;
``engine="runtime"`` simulates the literal ``_FloodProgram``.  The
contract: *equal reports* — collected sets, rounds, and the full
``MessageStats`` (total, ``by_tag``, ``per_round``) — on every tested
family × radius × seed combination, and identical simulation outcomes
through :func:`simulate_over_spanner` either way.
"""

from __future__ import annotations

import pytest

from repro.algorithms import BallCollect, LubyMis, MinIdAggregation, run_direct
from repro.analysis.stretch import bfs_distances
from repro.core import SamplerParams, build_spanner
from repro.graphs import barabasi_albert, erdos_renyi, torus
from repro.simulate import (
    flood_schedule,
    run_one_stage,
    run_two_stage,
    simulate_over_spanner,
    t_local_broadcast,
)

FAMILIES = [
    ("gnp", lambda seed: erdos_renyi(60, 0.1, seed=seed)),
    ("torus", lambda seed: torus(7, 7)),
    ("ba", lambda seed: barabasi_albert(60, 3, seed=seed)),
]


def _spanner_sub(net, seed):
    result = build_spanner(net, SamplerParams(k=1, h=2, seed=seed))
    return net.subnetwork(result.edges), result


class TestEngineEquivalence:
    @pytest.mark.parametrize("family,make", FAMILIES, ids=[f[0] for f in FAMILIES])
    @pytest.mark.parametrize("radius", [0, 1, 2, 3, 6])
    @pytest.mark.parametrize("seed", [1, 5])
    def test_flood_reports_equal(self, family, make, radius, seed):
        net = make(seed)
        sub, _ = _spanner_sub(net, seed)
        fast = t_local_broadcast(sub, lambda v: (v, "p"), radius, engine="fast")
        slow = t_local_broadcast(sub, lambda v: (v, "p"), radius, engine="runtime")
        assert fast.collected == slow.collected
        assert fast.rounds == slow.rounds
        assert fast.messages.total == slow.messages.total
        assert fast.messages.by_tag == slow.messages.by_tag
        assert fast.messages.per_round == slow.messages.per_round
        assert fast == slow  # full dataclass equality, nothing forgotten

    @pytest.mark.parametrize("family,make", FAMILIES, ids=[f[0] for f in FAMILIES])
    def test_simulation_outcomes_equal(self, family, make):
        net = make(3)
        sub, result = _spanner_sub(net, 3)
        for algo in (BallCollect(2), MinIdAggregation(2), LubyMis(phases=3)):
            fast = simulate_over_spanner(
                net, result.edges, result.stretch_bound, algo, seed=11, engine="fast"
            )
            slow = simulate_over_spanner(
                net, result.edges, result.stretch_bound, algo, seed=11, engine="runtime"
            )
            assert fast.outputs == slow.outputs
            assert fast.messages == slow.messages
            assert fast.rounds == slow.rounds
            assert fast.radius == slow.radius
            assert fast.mean_reports == slow.mean_reports

    def test_under_flooded_radius_still_matches_runtime(self):
        """With a radius below alpha*t some balls are not covered; the
        fast path must fall back to the literal per-center replay and
        stay output-identical to the runtime engine."""
        net = erdos_renyi(40, 0.08, seed=9)
        sub, result = _spanner_sub(net, 9)
        algo = BallCollect(2)
        for radius in (0, 1, 2):
            fast = simulate_over_spanner(
                net, result.edges, result.stretch_bound, algo,
                seed=7, radius=radius, engine="fast",
            )
            slow = simulate_over_spanner(
                net, result.edges, result.stretch_bound, algo,
                seed=7, radius=radius, engine="runtime",
            )
            assert fast.outputs == slow.outputs
            assert fast.messages == slow.messages

    def test_unknown_engine_rejected(self):
        net = torus(4, 4)
        with pytest.raises(ValueError):
            t_local_broadcast(net, lambda v: v, 2, engine="warp")
        with pytest.raises(ValueError):
            simulate_over_spanner(net, net.edge_ids, 1, BallCollect(1), engine="warp")

    @pytest.mark.parametrize("family,make", FAMILIES, ids=[f[0] for f in FAMILIES])
    def test_distance_engines_agree_through_broadcast(self, family, make):
        """The fast engine's two distance planes (vector / reference)
        produce the same FloodReport through t_local_broadcast."""
        net = make(4)
        sub, _ = _spanner_sub(net, 4)
        vector = t_local_broadcast(sub, lambda v: (v, "p"), 3, distance_engine="vector")
        reference = t_local_broadcast(
            sub, lambda v: (v, "p"), 3, distance_engine="reference"
        )
        assert vector == reference


class TestFloodSchedule:
    def test_balls_are_radius_balls(self):
        net = erdos_renyi(50, 0.09, seed=4)
        sub, _ = _spanner_sub(net, 4)
        adj = [sub.neighbors(v) for v in sub.nodes()]
        schedule = flood_schedule(sub, 3)
        for v in sub.nodes():
            assert schedule.balls[v] == frozenset(bfs_distances(adj, v, cutoff=3))

    def test_ecc_is_capped_eccentricity(self):
        net = torus(5, 5)  # diameter 4 (wraparound grid)
        schedule = flood_schedule(net, 10)
        assert all(e == 4 for e in schedule.ecc)
        capped = flood_schedule(net, 3)
        assert all(e == 3 for e in capped.ecc)

    def test_message_stats_invariants(self):
        net = erdos_renyi(50, 0.09, seed=4)
        sub, _ = _spanner_sub(net, 4)
        schedule = flood_schedule(sub, 4)
        stats = schedule.messages
        assert sum(stats.per_round) == stats.total
        assert stats.per_round[0] == 2 * sub.m
        assert stats.per_round[-1] == 0  # final-round sends are undelivered
        assert stats.by_tag["flood"] == stats.total
        assert stats.total <= 2 * sub.m * 4

    def test_zero_radius(self):
        net = torus(4, 4)
        schedule = flood_schedule(net, 0)
        assert schedule.messages.total == 0
        assert schedule.rounds == 0
        assert all(ball == {v} for v, ball in enumerate(schedule.balls))


class TestSchemesThroughEngines:
    """The one- and two-stage pipelines accept the engine switch and
    produce identical reports either way (outputs also equal direct)."""

    def test_one_stage(self):
        net = erdos_renyi(60, 0.18, seed=14)
        algo = MinIdAggregation(2)
        params = SamplerParams(k=1, h=2, seed=5)
        fast = run_one_stage(net, algo, params=params, seed=2, engine="fast")
        slow = run_one_stage(net, algo, params=params, seed=2, engine="runtime")
        direct = run_direct(net, algo, seed=2)
        assert fast.outputs == slow.outputs == direct.outputs
        assert fast.total_messages == slow.total_messages
        assert fast.total_rounds == slow.total_rounds

    def test_two_stage(self):
        net = erdos_renyi(60, 0.18, seed=14)
        algo = BallCollect(2)
        params = SamplerParams(k=1, h=2, seed=5)
        fast = run_two_stage(net, algo, stage1_params=params, stage2_k=2, seed=2, engine="fast")
        slow = run_two_stage(net, algo, stage1_params=params, stage2_k=2, seed=2, engine="runtime")
        direct = run_direct(net, algo, seed=2)
        assert fast.outputs == slow.outputs == direct.outputs
        assert fast.stage2_edges == slow.stage2_edges
        assert fast.total_messages == slow.total_messages
        assert fast.total_rounds == slow.total_rounds
