"""Performance contracts for the flat-array core.

Two kinds of guards:

* **structural** — the CSR fast paths must not fall back to per-edge
  object churn (counted by instrumenting ``EdgeRef``), and cached
  accessors must return the same object on repeated calls;
* **equivalence** — the incremental sampler strategy must stay
  *bit-identical* to the seed recount strategy, pinned both against each
  other (full-trace equality) and against the sha256 digests captured
  from the seed implementation before the refactor
  (``tests/data/golden_signatures.json``, regenerated only deliberately
  via ``tools/capture_golden_signatures.py``).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import time

import pytest

from repro.core import SamplerParams
from repro.core.sampler import SamplerRun
from repro.graphs import barabasi_albert, erdos_renyi, random_regular
from repro.local import EdgeRef, Network

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_signatures.json"


def _digest(trace) -> str:
    return hashlib.sha256(repr(trace.signature()).encode()).hexdigest()


@pytest.fixture(scope="module")
def goldens() -> dict[str, str]:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture()
def count_edgerefs(monkeypatch):
    """Patch EdgeRef.__post_init__ to count instantiations."""
    counter = {"count": 0}
    original = EdgeRef.__post_init__

    def counting(self):
        counter["count"] += 1
        original(self)

    monkeypatch.setattr(EdgeRef, "__post_init__", counting)
    return counter


class TestSubnetworkContracts:
    def test_subnetwork_creates_no_edge_objects(self, count_edgerefs):
        n = 50_000
        net = Network.from_edge_pairs(n, [(i, i + 1) for i in range(n - 1)])
        count_edgerefs["count"] = 0
        sub = net.subnetwork(range(0, n - 1, 2))
        assert count_edgerefs["count"] == 0
        assert sub.m == (n - 1 + 1) // 2
        assert sub.endpoints(0) == (0, 1)

    def test_from_edge_pairs_creates_no_edge_objects(self, count_edgerefs):
        Network.from_edge_pairs(1000, [(i, i + 1) for i in range(999)])
        assert count_edgerefs["count"] == 0

    def test_subnetwork_path_50k_is_fast(self):
        """Time-bounded sanity: views must be built in one linear pass.

        The seed implementation re-validated and re-built an EdgeRef map
        per subnetwork; on n=50k this guard allows ~20x headroom over
        the flat path's observed cost, but catches an accidental return
        to per-edge dict rebuilds (which would also trip the counter
        test above)."""
        n = 50_000
        net = Network.from_edge_pairs(n, [(i, i + 1) for i in range(n - 1)])
        started = time.perf_counter()
        for _ in range(3):
            net.subnetwork(range(0, n - 1, 2))
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0, f"subnetwork of a 50k path took {elapsed:.2f}s"

    def test_edge_view_is_lazy_but_correct(self):
        net = Network.from_edge_pairs(4, [(0, 1), (1, 2), (2, 3)])
        edge = net.edge(1)
        assert isinstance(edge, EdgeRef)
        assert (edge.eid, edge.u, edge.v) == (1, 1, 2)


class TestCachedAccessors:
    def test_neighbors_cached(self):
        net = erdos_renyi(60, 0.2, seed=3)
        assert net.neighbors(5) is net.neighbors(5)

    def test_adjacency_cached(self):
        net = erdos_renyi(60, 0.2, seed=3)
        assert net.adjacency() is net.adjacency()

    def test_incident_cached(self):
        net = erdos_renyi(60, 0.2, seed=3)
        assert net.incident(7) is net.incident(7)

    def test_neighbors_aligned_with_incident(self):
        net = erdos_renyi(40, 0.25, seed=4)
        for v in net.nodes():
            assert net.neighbors(v) == tuple(
                net.other_end(eid, v) for eid in net.incident(v)
            )

    def test_csr_views_consistent(self):
        net = erdos_renyi(40, 0.25, seed=5)
        indptr, inc = net.incidence_csr()
        eid_row, ep_u, ep_v = net.endpoints_flat()
        assert eid_row is None  # consecutive ids -> identity mapping
        for v in net.nodes():
            assert tuple(inc[indptr[v] : indptr[v + 1]]) == net.incident(v)
        for eid in net.edge_ids:
            assert (ep_u[eid], ep_v[eid]) == net.endpoints(eid)

    def test_sparse_id_subnetwork_keeps_lookups(self):
        net = erdos_renyi(30, 0.3, seed=6)
        keep = list(net.edge_ids)[1::2]  # non-consecutive -> dict mapping
        sub = net.subnetwork(keep)
        eid_row, _u, _v = sub.endpoints_flat()
        assert eid_row is not None
        for eid in keep:
            assert sub.endpoints(eid) == net.endpoints(eid)


FAMILIES = {
    "er60": lambda s: (erdos_renyi(60, 0.15, seed=s), SamplerParams(k=2, h=2, seed=s)),
    "reg64": lambda s: (
        random_regular(64, 6, seed=s),
        SamplerParams(k=2, h=2, seed=s + 100),
    ),
    "ba70": lambda s: (
        barabasi_albert(70, 4, seed=s),
        SamplerParams(k=1, h=2, seed=s + 200),
    ),
}


class TestIncrementalBitIdentical:
    """5 seeds x 3 families: flat path == seed path, pinned to goldens."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("seed", range(5))
    def test_trace_identical(self, family, seed, goldens):
        net, params = FAMILIES[family](seed)
        optimized = SamplerRun(net, params, incremental=True).run()
        reference = SamplerRun(net, params, incremental=False).run()
        assert optimized.edges == reference.edges
        assert optimized.trace.levels == reference.trace.levels
        assert optimized.trace.finished == reference.trace.finished
        digest = _digest(optimized.trace)
        assert digest == _digest(reference.trace)
        assert digest == goldens[f"{family}-s{seed}"], (
            f"{family}-s{seed}: trace diverged from the frozen seed behaviour"
        )
