"""Tests for graph generators, the level multigraph, and contraction."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import ConfigurationError
from repro.graphs import (
    LevelMultigraph,
    barabasi_albert,
    caveman,
    complete_graph,
    contract,
    dense_gnm,
    erdos_renyi,
    grid,
    hypercube,
    random_regular,
    torus,
)
from repro.graphs.contraction import contraction_census


class TestGenerators:
    def test_erdos_renyi_connected(self):
        net = erdos_renyi(80, 0.05, seed=2)
        assert nx.is_connected(net.to_networkx())

    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi(50, 0.1, seed=7)
        b = erdos_renyi(50, 0.1, seed=7)
        assert a.edge_ids == b.edge_ids

    def test_dense_gnm_exact_m_or_connected(self):
        net = dense_gnm(40, 200, seed=1)
        assert net.m >= 200  # ensure_connected may add a few
        assert net.m <= 210

    def test_dense_gnm_rejects_overfull(self):
        with pytest.raises(ConfigurationError):
            dense_gnm(10, 100)

    def test_random_regular(self):
        net = random_regular(20, 4, seed=1)
        degrees = [net.degree(v) for v in net.nodes()]
        assert all(d >= 4 for d in degrees)  # ensure_connected may add edges
        assert sum(degrees) >= 80

    def test_random_regular_parity(self):
        with pytest.raises(ConfigurationError):
            random_regular(7, 3)

    def test_hypercube(self):
        net = hypercube(4)
        assert net.n == 16
        assert net.m == 32
        assert all(net.degree(v) == 4 for v in net.nodes())

    def test_grid_and_torus(self):
        g = grid(3, 4)
        t = torus(3, 4)
        assert g.n == t.n == 12
        assert g.m == 17
        assert t.m == 24
        assert all(t.degree(v) == 4 for v in t.nodes())

    def test_complete(self):
        net = complete_graph(10)
        assert net.m == 45

    def test_barabasi_albert(self):
        net = barabasi_albert(50, 3, seed=1)
        assert net.n == 50
        assert nx.is_connected(net.to_networkx())

    def test_caveman(self):
        net = caveman(4, 5)
        assert net.n == 20
        assert nx.is_connected(net.to_networkx())


class TestLevelMultigraph:
    def test_level_zero(self, triangle):
        level = LevelMultigraph.level_zero(triangle)
        assert level.num_nodes == 3
        assert level.num_edges == 3
        assert level.neighbors(0) == [1, 2]
        assert level.volume(0) == 2
        assert level.degree(0) == 2

    def test_edges_between(self):
        level = LevelMultigraph({0: {1: [3, 5]}, 2: {1: [7]}})
        assert level.edges_between(0, 1) == (3, 5)
        assert level.edges_between(1, 0) == (3, 5)
        assert level.edges_between(0, 2) == ()
        assert level.incident_edges(1) == [3, 5, 7]
        assert level.volume(1) == 3

    def test_edge_endpoints(self):
        level = LevelMultigraph({0: {1: [3]}})
        assert level.edge_endpoints(3) == (0, 1)
        assert level.virtual_neighbor_via(0, 3) == 1
        assert level.virtual_neighbor_via(1, 3) == 0
        with pytest.raises(ConfigurationError):
            level.virtual_neighbor_via(2, 3)

    def test_rejects_self_loop(self):
        with pytest.raises(ConfigurationError):
            LevelMultigraph({0: {0: [1]}})

    def test_rejects_edge_in_two_pairs(self):
        with pytest.raises(ConfigurationError):
            LevelMultigraph({0: {1: [3]}, 2: {4: [3]}})

    def test_max_volume(self):
        level = LevelMultigraph({0: {1: [1, 2, 3]}, 4: {1: [5]}})
        assert level.max_volume() == 4  # node 1 carries all four edges


class TestContraction:
    def test_hand_example(self):
        # square 0-1-2-3 (edge ids 0..3 around) + diagonal 1-3 (id 4)
        level = LevelMultigraph(
            {0: {1: [0], 3: [3]}, 1: {2: [1], 3: [4]}, 2: {3: [2]}}
        )
        # clusters {0,1} -> A=0 and {2,3} -> B=2
        assignment = {0: 0, 1: 0, 2: 2, 3: 2}
        contracted = contract(level, assignment)
        assert contracted.num_nodes == 2
        assert sorted(contracted.edges_between(0, 2)) == [1, 3, 4]
        census = contraction_census(level, assignment)
        assert census.survived == 3
        assert census.became_intra == 2
        assert census.lost_to_unclustered == 0
        assert census.total == 5

    def test_unclustered_edges_drop(self):
        level = LevelMultigraph({0: {1: [0], 2: [1]}})
        contracted = contract(level, {0: 0})  # 1 and 2 unclustered
        assert contracted.num_nodes == 1
        assert contracted.num_edges == 0
        census = contraction_census(level, {0: 0})
        assert census.lost_to_unclustered == 2

    def test_multiplicities_accumulate(self, dense_small):
        level = LevelMultigraph.level_zero(dense_small)
        assignment = {v: v % 4 for v in range(dense_small.n)}
        contracted = contract(level, assignment)
        assert contracted.num_nodes == 4
        census = contraction_census(level, assignment)
        assert census.total == dense_small.m
        assert contracted.num_edges == census.survived
        # K40 in 4 buckets of 10: intra = 4 * C(10,2) = 180
        assert census.became_intra == 180
