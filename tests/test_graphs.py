"""Tests for graph generators, the level multigraph, and contraction."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import ConfigurationError
from repro.graphs import (
    LevelMultigraph,
    barabasi_albert,
    caveman,
    complete_graph,
    contract,
    dense_gnm,
    erdos_renyi,
    grid,
    hypercube,
    random_regular,
    torus,
)
from repro.graphs.contraction import contraction_census


class TestGenerators:
    def test_erdos_renyi_connected(self):
        net = erdos_renyi(80, 0.05, seed=2)
        assert nx.is_connected(net.to_networkx())

    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi(50, 0.1, seed=7)
        b = erdos_renyi(50, 0.1, seed=7)
        assert a.edge_ids == b.edge_ids

    def test_dense_gnm_exact_m_or_connected(self):
        net = dense_gnm(40, 200, seed=1)
        assert net.m >= 200  # ensure_connected may add a few
        assert net.m <= 210

    def test_dense_gnm_rejects_overfull(self):
        with pytest.raises(ConfigurationError):
            dense_gnm(10, 100)

    def test_random_regular(self):
        net = random_regular(20, 4, seed=1)
        degrees = [net.degree(v) for v in net.nodes()]
        assert all(d >= 4 for d in degrees)  # ensure_connected may add edges
        assert sum(degrees) >= 80

    def test_random_regular_parity(self):
        with pytest.raises(ConfigurationError):
            random_regular(7, 3)

    def test_hypercube(self):
        net = hypercube(4)
        assert net.n == 16
        assert net.m == 32
        assert all(net.degree(v) == 4 for v in net.nodes())

    def test_grid_and_torus(self):
        g = grid(3, 4)
        t = torus(3, 4)
        assert g.n == t.n == 12
        assert g.m == 17
        assert t.m == 24
        assert all(t.degree(v) == 4 for v in t.nodes())

    def test_complete(self):
        net = complete_graph(10)
        assert net.m == 45

    def test_barabasi_albert(self):
        net = barabasi_albert(50, 3, seed=1)
        assert net.n == 50
        assert nx.is_connected(net.to_networkx())

    def test_caveman(self):
        net = caveman(4, 5)
        assert net.n == 20
        assert nx.is_connected(net.to_networkx())


class TestArrayEngine:
    """The O(m) vectorized generators (DESIGN.md §3.11): same
    distribution family as the reference path, different instances,
    pinned against scalar mirrors and structural invariants."""

    @pytest.mark.parametrize("n", [2, 3, 7, 20])
    def test_pair_decode_matches_scalar_mirror(self, n):
        import numpy as np

        from repro.graphs.generators import (
            _decode_pair_index,
            _decode_pair_index_mirror,
        )

        total = n * (n - 1) // 2
        idx = np.arange(total, dtype=np.int64)
        u, v = _decode_pair_index(idx, n)
        mirror = [_decode_pair_index_mirror(i, n) for i in range(total)]
        assert list(zip(u.tolist(), v.tolist())) == mirror
        assert (u < v).all()

    def test_array_gnp_deterministic_and_connected(self):
        a = erdos_renyi(300, 0.02, seed=9, engine="array")
        b = erdos_renyi(300, 0.02, seed=9, engine="array")
        assert a.edge_ids == b.edge_ids
        assert a.fingerprint() == b.fingerprint()
        assert nx.is_connected(a.to_networkx())

    def test_array_gnp_seeds_differ(self):
        a = erdos_renyi(300, 0.02, seed=9, engine="array")
        b = erdos_renyi(300, 0.02, seed=10, engine="array")
        assert a.fingerprint() != b.fingerprint()

    def test_array_gnm_exact_edge_count(self):
        net = dense_gnm(100, 400, seed=3, connected=False, engine="array")
        assert net.m == 400
        seen = set()
        for eid in net.edge_ids:
            u, v = net.endpoints(eid)
            assert u != v  # simple graph: no self-loops ...
            assert (u, v) not in seen  # ... and no duplicate pairs
            seen.add((u, v))

    def test_array_ba_structure(self):
        n, attach = 120, 3
        net = barabasi_albert(n, attach, seed=4, engine="array")
        assert net.n == n
        # attachment process: a seed clique-free core then one batch of
        # `attach` edges per arriving node, connected by construction
        assert net.m == (n - attach) * attach
        assert nx.is_connected(net.to_networkx())
        degrees = sorted(net.degree(v) for v in net.nodes())
        assert degrees[0] >= attach  # arrivals bring `attach` stubs
        assert degrees[-1] > 2 * attach  # heavy tail exists

    def test_default_engine_unchanged(self):
        """engine='reference' is the default and stays byte-identical —
        existing seeds must keep reproducing their committed graphs."""
        assert (
            erdos_renyi(50, 0.1, seed=7).fingerprint()
            == erdos_renyi(50, 0.1, seed=7, engine="reference").fingerprint()
        )

    def test_bad_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi(30, 0.1, seed=1, engine="simd")


class TestLevelMultigraph:
    def test_level_zero(self, triangle):
        level = LevelMultigraph.level_zero(triangle)
        assert level.num_nodes == 3
        assert level.num_edges == 3
        assert level.neighbors(0) == [1, 2]
        assert level.volume(0) == 2
        assert level.degree(0) == 2

    def test_edges_between(self):
        level = LevelMultigraph({0: {1: [3, 5]}, 2: {1: [7]}})
        assert level.edges_between(0, 1) == (3, 5)
        assert level.edges_between(1, 0) == (3, 5)
        assert level.edges_between(0, 2) == ()
        assert level.incident_edges(1) == [3, 5, 7]
        assert level.volume(1) == 3

    def test_edge_endpoints(self):
        level = LevelMultigraph({0: {1: [3]}})
        assert level.edge_endpoints(3) == (0, 1)
        assert level.virtual_neighbor_via(0, 3) == 1
        assert level.virtual_neighbor_via(1, 3) == 0
        with pytest.raises(ConfigurationError):
            level.virtual_neighbor_via(2, 3)

    def test_rejects_self_loop(self):
        with pytest.raises(ConfigurationError):
            LevelMultigraph({0: {0: [1]}})

    def test_rejects_edge_in_two_pairs(self):
        with pytest.raises(ConfigurationError):
            LevelMultigraph({0: {1: [3]}, 2: {4: [3]}})

    def test_max_volume(self):
        level = LevelMultigraph({0: {1: [1, 2, 3]}, 4: {1: [5]}})
        assert level.max_volume() == 4  # node 1 carries all four edges


class TestContraction:
    def test_hand_example(self):
        # square 0-1-2-3 (edge ids 0..3 around) + diagonal 1-3 (id 4)
        level = LevelMultigraph(
            {0: {1: [0], 3: [3]}, 1: {2: [1], 3: [4]}, 2: {3: [2]}}
        )
        # clusters {0,1} -> A=0 and {2,3} -> B=2
        assignment = {0: 0, 1: 0, 2: 2, 3: 2}
        contracted = contract(level, assignment)
        assert contracted.num_nodes == 2
        assert sorted(contracted.edges_between(0, 2)) == [1, 3, 4]
        census = contraction_census(level, assignment)
        assert census.survived == 3
        assert census.became_intra == 2
        assert census.lost_to_unclustered == 0
        assert census.total == 5

    def test_unclustered_edges_drop(self):
        level = LevelMultigraph({0: {1: [0], 2: [1]}})
        contracted = contract(level, {0: 0})  # 1 and 2 unclustered
        assert contracted.num_nodes == 1
        assert contracted.num_edges == 0
        census = contraction_census(level, {0: 0})
        assert census.lost_to_unclustered == 2

    def test_multiplicities_accumulate(self, dense_small):
        level = LevelMultigraph.level_zero(dense_small)
        assignment = {v: v % 4 for v in range(dense_small.n)}
        contracted = contract(level, assignment)
        assert contracted.num_nodes == 4
        census = contraction_census(level, assignment)
        assert census.total == dense_small.m
        assert contracted.num_edges == census.survived
        # K40 in 4 buckets of 10: intra = 4 * C(10,2) = 180
        assert census.became_intra == 180
