"""The distance plane's engine-equivalence contract (DESIGN.md §3.7).

The vector engine (NumPy bitset sweeps) and the reference engine (the
seed pure-Python BFS) must produce *equal values* for every consumer:
``FloodSchedule`` (balls, ecc, per_round, by_tag), ``StretchReport``
(including truncated-cutoff and disconnected-spanner cases),
eccentricities/diameter, and the transformer's coverage verdicts.
Hypothesis drives families × radii × seeds through both engines; the
unit tests pin the edge cases property shrinking tends to miss.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms import BallCollect, MinIdAggregation
from repro.analysis.stretch import adjacent_pair_stretch, bfs_distances, pairwise_stretch
from repro.core import SamplerParams, build_spanner
from repro.graphs import barabasi_albert, dense_gnm, erdos_renyi, torus
from repro.graphs.distance import (
    DISTANCE_ENGINES,
    BallFamily,
    adjacency_csr,
    ball_matrix_blocks,
    balls_and_eccentricities,
    csr_from_adjacency,
    default_engine,
    distance_blocks,
    eccentricities,
    resolve_engine,
    single_source_distances,
)
from repro.local.network import Network
from repro.simulate import flood_schedule, simulate_over_spanner
from repro.simulate.global_tasks import graph_diameter

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_FAMILIES = {
    "gnp": lambda seed: erdos_renyi(40 + seed % 17, 0.09, seed=seed),
    "torus": lambda seed: torus(4 + seed % 4, 5),
    "ba": lambda seed: barabasi_albert(40 + seed % 13, 2 + seed % 2, seed=seed),
    "gnm": lambda seed: dense_gnm(20 + seed % 11, 30 + seed % 40, seed=seed),
}


def _spanner_edges(net: Network, seed: int) -> frozenset[int]:
    return build_spanner(net, SamplerParams(k=1, h=2, seed=seed)).edges


def _thinned(edges: frozenset[int], seed: int, keep: float) -> list[int]:
    """A seeded subset of the spanner's edges (to force disconnection)."""
    rng = random.Random(seed)
    kept = [eid for eid in sorted(edges) if rng.random() < keep]
    return kept


class TestFloodScheduleEquality:
    @given(
        family=st.sampled_from(sorted(_FAMILIES)),
        radius=st.integers(min_value=0, max_value=7),
        seed=st.integers(min_value=0, max_value=500),
    )
    @_SETTINGS
    def test_engines_agree(self, family, radius, seed):
        net = _FAMILIES[family](seed)
        sub = net.subnetwork(_spanner_edges(net, seed))
        fast = flood_schedule(sub, radius, engine="vector")
        ref = flood_schedule(sub, radius, engine="reference")
        assert fast.ecc == ref.ecc
        assert fast.rounds == ref.rounds
        assert fast.messages.total == ref.messages.total
        assert fast.messages.per_round == ref.messages.per_round
        assert fast.messages.by_tag == ref.messages.by_tag
        assert fast.balls == ref.balls
        assert ref.balls == fast.balls  # symmetric across representations
        assert fast == ref
        assert fast.mean_ball_size() == ref.mean_ball_size()

    @given(
        family=st.sampled_from(sorted(_FAMILIES)),
        seed=st.integers(min_value=0, max_value=500),
        keep=st.sampled_from([0.0, 0.3, 0.7]),
    )
    @_SETTINGS
    def test_engines_agree_on_disconnected_spanners(self, family, seed, keep):
        """Thinning the spanner disconnects it; ball/ecc values must
        still match (frontiers die early on islands)."""
        net = _FAMILIES[family](seed)
        sub = net.subnetwork(_thinned(_spanner_edges(net, seed), seed, keep))
        fast = flood_schedule(sub, 4, engine="vector")
        ref = flood_schedule(sub, 4, engine="reference")
        assert fast == ref


class TestStretchReportEquality:
    @given(
        family=st.sampled_from(sorted(_FAMILIES)),
        seed=st.integers(min_value=0, max_value=500),
        cutoff=st.sampled_from([math.inf, 1, 2, 3, 2.5]),
        keep=st.sampled_from([1.0, 0.5, 0.1]),
    )
    @_SETTINGS
    def test_adjacent_pair_engines_agree(self, family, seed, cutoff, keep):
        net = _FAMILIES[family](seed)
        edges = _spanner_edges(net, seed)
        spanner = sorted(edges) if keep >= 1.0 else _thinned(edges, seed, keep)
        fast = adjacent_pair_stretch(net, spanner, cutoff=cutoff, engine="vector")
        ref = adjacent_pair_stretch(net, spanner, cutoff=cutoff, engine="reference")
        assert fast == ref
        # thinned spanners must be able to produce both buckets
        assert fast.unreachable_pairs >= 0 and fast.beyond_cutoff >= 0

    @given(
        family=st.sampled_from(sorted(_FAMILIES)),
        seed=st.integers(min_value=0, max_value=500),
        sources=st.sampled_from([None, 7]),
        keep=st.sampled_from([1.0, 0.4]),
    )
    @_SETTINGS
    def test_pairwise_engines_agree(self, family, seed, sources, keep):
        net = _FAMILIES[family](seed)
        edges = _spanner_edges(net, seed)
        spanner = sorted(edges) if keep >= 1.0 else _thinned(edges, seed, keep)
        fast = pairwise_stretch(net, spanner, sources=sources, seed=seed, engine="vector")
        ref = pairwise_stretch(net, spanner, sources=sources, seed=seed, engine="reference")
        assert fast == ref

    def test_sampling_path_engines_agree(self):
        net = erdos_renyi(80, 0.1, seed=6)
        edges = _spanner_edges(net, 6)
        fast = adjacent_pair_stretch(net, edges, sample=40, seed=3, engine="vector")
        ref = adjacent_pair_stretch(net, edges, sample=40, seed=3, engine="reference")
        assert fast == ref
        assert fast.pairs_measured == 40


class TestSimulationEquality:
    @pytest.mark.parametrize("radius", [0, 1, 2, None])
    def test_transformer_distance_engines_agree(self, radius):
        """Vector and reference coverage checks pick the same uncovered
        centers — outcomes are identical even under-flooded."""
        net = erdos_renyi(40, 0.08, seed=9)
        result = build_spanner(net, SamplerParams(k=1, h=2, seed=9))
        algo = BallCollect(2)
        outcomes = [
            simulate_over_spanner(
                net,
                result.edges,
                result.stretch_bound,
                algo,
                seed=7,
                radius=radius,
                distance_engine=engine,
            )
            for engine in DISTANCE_ENGINES
        ]
        assert outcomes[0] == outcomes[1]

    def test_one_stage_under_reference_engine(self):
        from repro.simulate import run_one_stage

        net = erdos_renyi(50, 0.15, seed=3)
        algo = MinIdAggregation(2)
        params = SamplerParams(k=1, h=2, seed=5)
        fast = run_one_stage(net, algo, params=params, seed=2)
        # process-default engine flows through the whole pipeline
        assert fast.outputs  # sanity: covered by engine-equality above


class TestBatchedPrimitives:
    def test_distance_blocks_match_single_source(self):
        net = barabasi_albert(50, 2, seed=4)
        adj = [list(net.neighbors(v)) for v in range(net.n)]
        indptr, indices = csr_from_adjacency(adj)
        for cutoff in (math.inf, 2, 3.5):
            for offset, dist, exhausted in distance_blocks(
                indptr, indices, range(net.n), cutoff=cutoff
            ):
                for i in range(dist.shape[0]):
                    ref = single_source_distances(adj, offset + i, cutoff)
                    got = {w: int(d) for w, d in enumerate(dist[i]) if d >= 0}
                    assert got == ref

    def test_adjacency_csr_matches_neighbors(self):
        net = erdos_renyi(30, 0.2, seed=8)
        indptr, indices = adjacency_csr(net)
        for v in range(net.n):
            got = sorted(indices[indptr[v] : indptr[v + 1]].tolist())
            assert got == sorted(net.neighbors(v))

    def test_ball_matrix_blocks_match_family(self):
        net = torus(5, 5)
        indptr, indices = adjacency_csr(net)
        family, _ = balls_and_eccentricities(net, 2, engine="vector")
        for offset, rows in ball_matrix_blocks(indptr, indices, range(net.n), 2):
            for i in range(rows.shape[0]):
                assert frozenset(np.nonzero(rows[i])[0].tolist()) == family[offset + i]

    def test_eccentricities_and_diameter(self):
        net = torus(5, 5)  # wraparound grid, diameter 4
        ecc_v, reached_v = eccentricities(net, engine="vector")
        ecc_r, reached_r = eccentricities(net, engine="reference")
        assert (ecc_v, reached_v) == (ecc_r, reached_r)
        assert graph_diameter(net) == 4
        two = Network.from_edge_pairs(4, [(0, 1), (2, 3)], name="two-islands")
        with pytest.raises(ValueError):
            graph_diameter(two)
        with pytest.raises(ValueError):
            graph_diameter(two, engine="reference")

    def test_single_node_and_edgeless(self):
        lone = Network.from_edge_pairs(1, [])
        assert flood_schedule(lone, 3, engine="vector") == flood_schedule(
            lone, 3, engine="reference"
        )
        islands = Network.from_edge_pairs(5, [])
        fast = flood_schedule(islands, 2, engine="vector")
        assert all(ball == {v} for v, ball in enumerate(fast.balls))
        assert fast == flood_schedule(islands, 2, engine="reference")


class TestBallFamily:
    def _family_pair(self):
        net = erdos_renyi(30, 0.12, seed=2)
        packed, ecc_p = balls_and_eccentricities(net, 2, engine="vector")
        sets, ecc_s = balls_and_eccentricities(net, 2, engine="reference")
        return packed, sets

    def test_sequence_protocol(self):
        packed, sets = self._family_pair()
        assert len(packed) == len(sets)
        assert list(packed) == list(sets)
        assert packed[-1] == sets[len(sets) - 1]
        assert packed[1:3] == sets[1:3]
        with pytest.raises(IndexError):
            packed[len(packed)]

    def test_equality_across_representations(self):
        packed, sets = self._family_pair()
        assert packed == sets and sets == packed
        assert packed == tuple(sets)  # plain sequences compare too
        other = BallFamily.from_sets([frozenset({0})] * len(packed), packed.universe)
        assert packed != other

    def test_sizes_and_membership(self):
        packed, sets = self._family_pair()
        assert packed.sizes().tolist() == [len(s) for s in sets]
        rows = packed.membership_rows([0, 3])
        assert frozenset(np.nonzero(rows[0])[0].tolist()) == sets[0]
        set_rows = sets.membership_rows([0, 3])
        assert np.array_equal(rows, set_rows)

    def test_unhashable_and_constructor_guard(self):
        packed, _ = self._family_pair()
        with pytest.raises(TypeError):
            hash(packed)
        with pytest.raises(ValueError):
            BallFamily(3)


class TestEngineSelection:
    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_engine("warp")
        with pytest.raises(ValueError):
            flood_schedule(torus(3, 3), 1, engine="warp")
        with pytest.raises(ValueError):
            adjacent_pair_stretch(torus(3, 3), [], engine="warp")

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISTANCE_ENGINE", "reference")
        assert default_engine() == "reference"
        assert resolve_engine(None) == "reference"
        monkeypatch.delenv("REPRO_DISTANCE_ENGINE")
        assert default_engine() == "vector"

    def test_bfs_distances_alias(self):
        net = torus(4, 4)
        adj = [list(net.neighbors(v)) for v in range(net.n)]
        assert bfs_distances(adj, 0, cutoff=2) == single_source_distances(
            adj, 0, cutoff=2
        )
