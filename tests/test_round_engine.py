"""The array-native round engine contract (DESIGN.md §3.10).

One pillar, checked from many directions: ``round_engine="vector"`` and
``round_engine="reference"`` produce identical
:class:`~repro.local.metrics.RunReport`s — outputs, rounds, ``halted``,
``total``/``by_tag``/``per_round``/``dropped``/``corrupted`` — for every
shipped population (flood, gossip, registered LOCAL algorithms, and the
hybrid-plane ``Sampler``), across graph families × seeds × fault plans
(drops *and* corruption) × ``fixed_rounds`` × both reference
schedulers.  Hypothesis drives the same assertions over random dense
multigraph-free networks so hand-picked cases are not the only
witnesses.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms import (
    BallCollect,
    BfsLayers,
    LubyMis,
    MinIdAggregation,
    RandomMatching,
    RandomizedColoring,
    run_direct,
)
from repro.core import SamplerParams
from repro.core.distributed import build_spanner_distributed
from repro.core.distributed.program import SamplerProgram
from repro.core.distributed.schedule import Schedule
from repro.errors import ProtocolError
from repro.graphs import barabasi_albert, dense_gnm, erdos_renyi, torus
from repro.local import FaultPlan, Network
from repro.local.engine import VectorRuntime, resolve_round_engine
from repro.local.runtime import run_program
from repro.simulate import t_local_broadcast
from repro.simulate.gossip import PushPullGossip, _VectorGossip, run_push_pull

FAMILIES = {
    "gnp": lambda: erdos_renyi(60, 0.12, seed=5),
    "torus": lambda: torus(8, 8),
    "ba": lambda: barabasi_albert(64, 2, seed=7),
}
SEEDS = (0, 1, 2)
PLANS = {
    "none": None,
    "drops": FaultPlan(drop_probability=0.05, seed=13),
    "corrupt": FaultPlan(corrupt_probability=0.06, seed=13),
    "both": FaultPlan(drop_probability=0.04, corrupt_probability=0.05, seed=29),
}
ALGORITHMS = (
    BallCollect(2),
    BfsLayers(0, 3),
    LubyMis(2),
    MinIdAggregation(3),
    RandomMatching(1),
    RandomizedColoring(2),
)

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_reports_equal(vec, ref):
    assert vec.outputs == ref.outputs
    assert vec.rounds == ref.rounds
    assert vec.halted == ref.halted
    assert vec.messages.total == ref.messages.total
    assert vec.messages.by_tag == ref.messages.by_tag
    assert vec.messages.per_round == ref.messages.per_round
    assert vec.messages.dropped == ref.messages.dropped
    assert vec.messages.corrupted == ref.messages.corrupted


def run_gossip(net: Network, rounds: int, seed: int, faults, engine: str):
    """Full-RunReport gossip run (run_push_pull only reports coverage)."""
    if engine == "vector":
        return VectorRuntime(
            net,
            _VectorGossip(net, seed),
            fixed_rounds=rounds,
            max_rounds=rounds + 1,
            faults=faults,
        ).run()
    return run_program(
        net,
        lambda node: PushPullGossip(node),
        seed=seed,
        fixed_rounds=rounds,
        max_rounds=rounds + 1,
        faults=faults,
    )


@st.composite
def small_network(draw) -> Network:
    n = draw(st.integers(min_value=4, max_value=36))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=max(0, n - 4), max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return dense_gnm(n, m, seed=seed)


# ---------------------------------------------------------------------------
# flood population
# ---------------------------------------------------------------------------
class TestFloodEngine:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("plan", sorted(PLANS))
    def test_runtime_flood_identical(self, family, plan):
        net = FAMILIES[family]()
        reports = {
            engine: t_local_broadcast(
                net,
                payload_of=lambda v: ("ball", v),
                radius=3,
                engine="runtime",
                round_engine=engine,
                faults=PLANS[plan],
            )
            for engine in ("vector", "reference")
        }
        vec, ref = reports["vector"], reports["reference"]
        assert vec.collected == ref.collected
        assert vec.rounds == ref.rounds
        assert vec.messages.total == ref.messages.total
        assert vec.messages.by_tag == ref.messages.by_tag
        assert vec.messages.per_round == ref.messages.per_round
        assert vec.messages.dropped == ref.messages.dropped
        assert vec.messages.corrupted == ref.messages.corrupted

    @pytest.mark.parametrize("scheduler", ("active", "dense"))
    def test_against_both_reference_schedulers(self, scheduler):
        net = FAMILIES["gnp"]()
        vec = t_local_broadcast(
            net, lambda v: (v,), radius=2, engine="runtime", round_engine="vector"
        )
        ref = t_local_broadcast(
            net,
            lambda v: (v,),
            radius=2,
            engine="runtime",
            round_engine="reference",
            scheduler=scheduler,
        )
        assert vec.collected == ref.collected
        assert vec.messages.per_round == ref.messages.per_round

    def test_isolated_nodes(self):
        # Nodes 4..6 have no ports: the vector population must report
        # the same singleton balls and round count the reference does.
        net = Network.from_edge_pairs(7, [(0, 1), (1, 2), (2, 3)])
        reports = [
            t_local_broadcast(
                net, lambda v: v, radius=2, engine="runtime", round_engine=engine
            )
            for engine in ("vector", "reference")
        ]
        assert reports[0].collected == reports[1].collected
        assert reports[0].rounds == reports[1].rounds

    @_SETTINGS
    @given(
        net=small_network(),
        radius=st.integers(min_value=0, max_value=4),
        plan=st.sampled_from(sorted(PLANS)),
    )
    def test_property_flood(self, net: Network, radius: int, plan: str):
        reports = [
            t_local_broadcast(
                net,
                payload_of=lambda v: (v, v * v),
                radius=radius,
                engine="runtime",
                round_engine=engine,
                faults=PLANS[plan],
            )
            for engine in ("vector", "reference")
        ]
        assert reports[0].collected == reports[1].collected
        assert reports[0].messages.per_round == reports[1].messages.per_round
        assert reports[0].messages.dropped == reports[1].messages.dropped
        assert reports[0].messages.corrupted == reports[1].messages.corrupted


# ---------------------------------------------------------------------------
# gossip population
# ---------------------------------------------------------------------------
class TestGossipEngine:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("plan", sorted(PLANS))
    def test_full_runreport_identical(self, family, plan):
        net = FAMILIES[family]()
        vec = run_gossip(net, rounds=5, seed=3, faults=PLANS[plan], engine="vector")
        ref = run_gossip(net, rounds=5, seed=3, faults=PLANS[plan], engine="reference")
        assert_reports_equal(vec, ref)

    @pytest.mark.parametrize("scheduler", ("active", "dense"))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_coverage_report_identical(self, scheduler, seed):
        net = FAMILIES["ba"]()
        vec = run_push_pull(net, rounds=6, t=2, seed=seed, round_engine="vector")
        ref = run_push_pull(
            net, rounds=6, t=2, seed=seed, round_engine="reference", scheduler=scheduler
        )
        assert vec.coverage == ref.coverage
        assert vec.rounds == ref.rounds
        assert vec.messages.total == ref.messages.total
        assert vec.messages.per_round == ref.messages.per_round

    def test_isolated_nodes(self):
        # An isolated node halts reactively on both engines (it can
        # neither push nor be pulled from) and outputs its own id.
        net = Network.from_edge_pairs(5, [(0, 1), (1, 2)])
        vec = run_gossip(net, rounds=4, seed=1, faults=None, engine="vector")
        ref = run_gossip(net, rounds=4, seed=1, faults=None, engine="reference")
        assert_reports_equal(vec, ref)
        assert vec.outputs[4] == frozenset({4})

    @_SETTINGS
    @given(
        net=small_network(),
        seed=st.integers(min_value=0, max_value=1000),
        rounds=st.integers(min_value=0, max_value=6),
        plan=st.sampled_from(sorted(PLANS)),
    )
    def test_property_gossip(self, net: Network, seed: int, rounds: int, plan: str):
        vec = run_gossip(net, rounds, seed, PLANS[plan], "vector")
        ref = run_gossip(net, rounds, seed, PLANS[plan], "reference")
        assert_reports_equal(vec, ref)


# ---------------------------------------------------------------------------
# registered LOCAL algorithm populations
# ---------------------------------------------------------------------------
class TestAlgorithmEngine:
    @pytest.mark.parametrize("algo", ALGORITHMS, ids=lambda a: a.name)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_run_direct_identical(self, algo, seed):
        net = FAMILIES["gnp"]()
        vec = run_direct(net, algo, seed=seed, round_engine="vector")
        ref = run_direct(net, algo, seed=seed, round_engine="reference")
        assert vec.outputs == ref.outputs
        assert vec.rounds == ref.rounds
        assert vec.messages.total == ref.messages.total
        assert vec.messages.by_tag == ref.messages.by_tag
        assert vec.messages.per_round == ref.messages.per_round

    @pytest.mark.parametrize("algo", ALGORITHMS, ids=lambda a: a.name)
    def test_run_direct_under_drops(self, algo):
        net = FAMILIES["torus"]()
        plan = PLANS["drops"]
        vec = run_direct(net, algo, seed=1, round_engine="vector", faults=plan)
        ref = run_direct(net, algo, seed=1, round_engine="reference", faults=plan)
        assert vec.outputs == ref.outputs
        assert vec.messages.per_round == ref.messages.per_round
        assert vec.messages.dropped == ref.messages.dropped

    def test_corrupt_plans_fall_back_identically(self):
        # Corrupt-capable plans route the vector engine to the reference
        # interpreter (tampered payloads are defined per node program).
        # Pure LOCAL algorithms define no corrupted-payload handling —
        # they fail — so the engine contract here is *identical
        # failure*: same exception type, same message.
        net = FAMILIES["gnp"]()
        plan = PLANS["both"]

        def run(engine):
            return run_direct(
                net, MinIdAggregation(3), seed=2, round_engine=engine, faults=plan
            )

        outcomes = {}
        for engine in ("vector", "reference"):
            try:
                outcomes[engine] = ("ok", run(engine))
            except Exception as exc:  # noqa: BLE001 - comparing verbatim
                outcomes[engine] = ("raised", type(exc), str(exc))
        if outcomes["vector"][0] == "ok":
            vec, ref = outcomes["vector"][1], outcomes["reference"][1]
            assert vec.outputs == ref.outputs
            assert vec.messages.per_round == ref.messages.per_round
            assert vec.messages.corrupted == ref.messages.corrupted
        else:
            assert outcomes["vector"] == outcomes["reference"]

    def test_isolated_nodes(self):
        net = Network.from_edge_pairs(4, [(0, 1)])
        for algo in (MinIdAggregation(2), BallCollect(3)):
            vec = run_direct(net, algo, seed=1, round_engine="vector")
            ref = run_direct(net, algo, seed=1, round_engine="reference")
            assert vec.outputs == ref.outputs
            assert vec.rounds == ref.rounds
            assert vec.messages.per_round == ref.messages.per_round

    @_SETTINGS
    @given(
        net=small_network(),
        seed=st.integers(min_value=0, max_value=1000),
        index=st.integers(min_value=0, max_value=len(ALGORITHMS) - 1),
    )
    def test_property_run_direct(self, net: Network, seed: int, index: int):
        algo = ALGORITHMS[index]
        vec = run_direct(net, algo, seed=seed, round_engine="vector")
        ref = run_direct(net, algo, seed=seed, round_engine="reference")
        assert vec.outputs == ref.outputs
        assert vec.rounds == ref.rounds
        assert vec.messages.per_round == ref.messages.per_round


# ---------------------------------------------------------------------------
# the Sampler's hybrid planes
# ---------------------------------------------------------------------------
class TestSamplerEngine:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_spanner_results_identical(self, family):
        net = FAMILIES[family]()
        params = SamplerParams(k=1, h=3, seed=11, c_query=0.7, c_target=1.0)
        vec = build_spanner_distributed(net, params, engine="vector")
        ref = build_spanner_distributed(net, params, engine="reference")
        assert vec.edges == ref.edges
        assert vec.rounds == ref.rounds
        assert vec.trace.signature() == ref.trace.signature()
        assert vec.messages.per_round == ref.messages.per_round
        assert vec.messages.by_tag == ref.messages.by_tag

    def test_vector_engine_vs_dense_scheduler(self):
        net = FAMILIES["gnp"]()
        params = SamplerParams(k=2, h=2, seed=7)
        vec = build_spanner_distributed(net, params, engine="vector")
        dense = build_spanner_distributed(net, params, scheduler="dense")
        assert vec.edges == dense.edges
        assert vec.trace.signature() == dense.trace.signature()
        assert vec.messages.per_round == dense.messages.per_round

    @pytest.mark.parametrize("drop_seed", (9, 17, 23))
    def test_stranded_faults_agree(self, drop_seed):
        # Dropped broadcasts can strand convergecasts mid-protocol; the
        # two engines must then fail identically (same ProtocolError
        # text) or succeed with identical reports.
        net = erdos_renyi(48, 0.1, seed=2)
        plan = FaultPlan(drop_probability=0.02, seed=drop_seed)
        params = SamplerParams(k=1, h=2, seed=3)
        schedule = Schedule.build(params)

        def run(engine):
            return run_program(
                net,
                lambda node: SamplerProgram(node, params, schedule),
                seed=params.seed,
                max_rounds=schedule.total_rounds + 2,
                n_hint=net.n,
                faults=plan,
                fixed_rounds=schedule.total_rounds,
                engine=engine,
            )

        try:
            ref = run("reference")
        except ProtocolError as exc:
            with pytest.raises(ProtocolError) as vec_exc:
                run("vector")
            assert str(vec_exc.value) == str(exc)
            return
        vec = run("vector")
        assert_reports_equal(vec, ref)

    def test_corruption_disables_planes_not_equality(self):
        # can_corrupt plans keep every message on the per-node dispatch
        # path (hybrid planes are delivery-time absorption and cannot
        # express tampered payloads), so the engine switch must stay
        # behaviour-invariant — here, identical reports or identical
        # failure, since the Sampler defines no corrupted-payload
        # handling and faults on a handshake tag blow up the protocol.
        net = FAMILIES["torus"]()
        plan = FaultPlan(corrupt_probability=0.03, seed=5)
        params = SamplerParams(k=1, h=2, seed=3)
        schedule = Schedule.build(params)

        def run(engine):
            return run_program(
                net,
                lambda node: SamplerProgram(node, params, schedule),
                seed=params.seed,
                max_rounds=schedule.total_rounds + 2,
                n_hint=net.n,
                faults=plan,
                fixed_rounds=schedule.total_rounds,
                engine=engine,
            )

        outcomes = {}
        for engine in ("vector", "reference"):
            try:
                outcomes[engine] = ("ok", run(engine))
            except Exception as exc:  # noqa: BLE001 - comparing verbatim
                outcomes[engine] = ("raised", type(exc), str(exc))
        if outcomes["vector"][0] == "ok":
            assert_reports_equal(outcomes["vector"][1], outcomes["reference"][1])
        else:
            assert outcomes["vector"] == outcomes["reference"]


# ---------------------------------------------------------------------------
# the switch itself
# ---------------------------------------------------------------------------
class TestEngineSwitch:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ROUND_ENGINE", raising=False)
        assert resolve_round_engine(None) == "vector"
        monkeypatch.setenv("REPRO_ROUND_ENGINE", "reference")
        assert resolve_round_engine(None) == "reference"
        assert resolve_round_engine("vector") == "vector"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown round engine"):
            resolve_round_engine("simd")
