"""Tests for rooted-tree helpers."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.local.tree import RootedTree, bfs_tree, tree_from_parent_map


def chain_tree(length: int) -> RootedTree:
    """0 <- 1 <- 2 ... (root 0), edge ids = child index."""
    return RootedTree(root=0, parent={i: (i - 1, i) for i in range(1, length)})


class TestRootedTree:
    def test_depths_and_height(self):
        tree = chain_tree(4)
        assert tree.depths() == {0: 0, 1: 1, 2: 2, 3: 3}
        assert tree.height == 3
        assert tree.size == 4

    def test_singleton(self):
        tree = RootedTree(root=7, parent={})
        assert tree.height == 0
        assert tree.diameter() == 0
        assert tree.members == frozenset({7})

    def test_star_diameter(self):
        tree = RootedTree(root=0, parent={i: (0, i) for i in range(1, 5)})
        assert tree.height == 1
        assert tree.diameter() == 2

    def test_chain_diameter(self):
        assert chain_tree(5).diameter() == 4

    def test_children_sorted(self):
        tree = RootedTree(root=0, parent={2: (0, 5), 1: (0, 4)})
        assert tree.children()[0] == [(1, 4), (2, 5)]

    def test_path_to_root(self):
        tree = chain_tree(4)
        assert tree.path_to_root(3) == [3, 2, 1]
        assert tree.path_to_root(0) == []

    def test_edge_ids(self):
        assert chain_tree(3).edge_ids() == frozenset({1, 2})

    def test_disconnected_parent_map_rejected(self):
        with pytest.raises(ValidationError):
            tree_from_parent_map(0, {2: (3, 0)})

    def test_cycle_detected_in_path(self):
        tree = RootedTree(root=0, parent={1: (2, 0), 2: (1, 1)})
        with pytest.raises(ValidationError):
            tree.path_to_root(1)


class TestBfsTree:
    def test_builds_shortest_paths(self):
        # square: 0-1, 1-2, 2-3, 3-0
        adjacency = {
            0: [(1, 0), (3, 3)],
            1: [(0, 0), (2, 1)],
            2: [(1, 1), (3, 2)],
            3: [(2, 2), (0, 3)],
        }
        tree = bfs_tree(adjacency, 0)
        assert tree.size == 4
        assert tree.height == 2
        assert tree.depths()[2] == 2
