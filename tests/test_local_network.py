"""Tests for Network, EdgeRef and the knowledge model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.graphs import erdos_renyi
from repro.local import EdgeRef, Knowledge, Network


class TestEdgeRef:
    def test_canonical_orientation(self):
        edge = EdgeRef(0, 5, 2)
        assert (edge.u, edge.v) == (2, 5)

    def test_other(self):
        edge = EdgeRef(0, 1, 2)
        assert edge.other(1) == 2
        assert edge.other(2) == 1
        with pytest.raises(ValueError):
            edge.other(3)

    def test_loop_detection(self):
        assert EdgeRef(0, 3, 3).is_loop()
        assert not EdgeRef(0, 3, 4).is_loop()


class TestNetworkConstruction:
    def test_from_edge_pairs(self, path4):
        assert path4.n == 4
        assert path4.m == 3
        assert path4.incident(1) == (0, 1)
        assert path4.degree(0) == 1

    def test_duplicate_edge_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Network(2, [EdgeRef(0, 0, 1), EdgeRef(0, 1, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            Network(2, [EdgeRef(0, 1, 1)])

    def test_endpoint_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            Network(2, [EdgeRef(0, 0, 5)])

    def test_empty_network_rejected(self):
        with pytest.raises(ConfigurationError):
            Network(0, [])

    def test_from_graph_is_deterministic(self):
        a = erdos_renyi(30, 0.2, seed=9)
        b = erdos_renyi(30, 0.2, seed=9)
        assert a.edge_ids == b.edge_ids
        assert [a.endpoints(e) for e in a.edge_ids] == [
            b.endpoints(e) for e in b.edge_ids
        ]

    def test_to_networkx_roundtrip(self, er_small):
        g = er_small.to_networkx()
        again = Network.from_graph(g)
        assert again.n == er_small.n
        assert again.m == er_small.m


class TestNetworkAccessors:
    def test_other_end(self, path4):
        eid = path4.incident(0)[0]
        assert path4.other_end(eid, 0) == 1

    def test_neighbors(self, triangle):
        assert sorted(triangle.neighbors(0)) == [1, 2]

    def test_incident_sorted(self, star6):
        assert list(star6.incident(0)) == sorted(star6.incident(0))

    def test_adjacency(self, triangle):
        adj = triangle.adjacency()
        assert sorted(adj[1]) == [0, 2]


class TestSubnetwork:
    def test_preserves_edge_ids(self, er_small):
        keep = list(er_small.edge_ids)[::2]
        sub = er_small.subnetwork(keep)
        assert sub.n == er_small.n
        assert set(sub.edge_ids) == set(keep)
        for eid in keep:
            assert sub.endpoints(eid) == er_small.endpoints(eid)

    def test_unknown_edge_rejected(self, path4):
        with pytest.raises(ConfigurationError):
            path4.subnetwork([999])

    def test_empty_subnetwork(self, path4):
        sub = path4.subnetwork([])
        assert sub.m == 0
        assert sub.n == 4


class TestKnowledge:
    def test_default_is_edge_ids(self, path4):
        assert path4.knowledge is Knowledge.EDGE_IDS

    def test_with_knowledge(self, path4):
        kt1 = path4.with_knowledge(Knowledge.KT1)
        assert kt1.knowledge is Knowledge.KT1
        assert kt1.m == path4.m

    def test_exposure_flags(self):
        assert not Knowledge.KT0.exposes_edge_ids
        assert Knowledge.EDGE_IDS.exposes_edge_ids
        assert not Knowledge.EDGE_IDS.exposes_neighbor_ids
        assert Knowledge.KT1.exposes_neighbor_ids
