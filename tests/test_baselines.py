"""Tests for the Baswana–Sen baseline."""

from __future__ import annotations

import pytest

from repro.algorithms import run_direct
from repro.analysis.stretch import adjacent_pair_stretch
from repro.baselines import (
    BaswanaSenLocal,
    baswana_sen_messages_estimate,
    baswana_sen_spanner,
)
from repro.errors import ConfigurationError
from repro.graphs import complete_graph, erdos_renyi


class TestSpannerProperties:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_stretch_bound(self, er_medium, k):
        edges = baswana_sen_spanner(er_medium, k=k, seed=3)
        report = adjacent_pair_stretch(er_medium, edges)
        assert report.unreachable_pairs == 0
        assert report.max_stretch <= 2 * k - 1

    def test_k1_keeps_everything(self, er_small):
        edges = baswana_sen_spanner(er_small, k=1, seed=3)
        assert edges == frozenset(er_small.edge_ids)

    def test_sparsifies_dense_graphs(self):
        net = complete_graph(80)
        edges = baswana_sen_spanner(net, k=3, seed=1)
        assert len(edges) < 0.5 * net.m

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_expected_size_scaling(self, seed):
        # O(k n^{1+1/k}) expected; allow a generous constant
        net = erdos_renyi(150, 0.3, seed=9)
        k = 2
        edges = baswana_sen_spanner(net, k=k, seed=seed)
        assert len(edges) <= 6 * k * net.n ** (1 + 1 / k)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            BaswanaSenLocal(k=0)


class TestDistributedTwin:
    def test_direct_run_matches_centralized(self, er_medium):
        algo = BaswanaSenLocal(k=3, coin_seed=7)
        direct = run_direct(er_medium, algo, seed=7)
        union = set()
        for added in direct.outputs.values():
            union.update(added)
        assert frozenset(union) == baswana_sen_spanner(er_medium, k=3, seed=7)

    def test_direct_message_cost_is_theta_m_per_round(self, er_medium):
        k = 3
        algo = BaswanaSenLocal(k=k, coin_seed=7)
        direct = run_direct(er_medium, algo, seed=7)
        assert direct.total_messages == baswana_sen_messages_estimate(er_medium, k)
        assert direct.rounds == k

    def test_determinism(self, er_small):
        a = baswana_sen_spanner(er_small, k=2, seed=5)
        b = baswana_sen_spanner(er_small, k=2, seed=5)
        c = baswana_sen_spanner(er_small, k=2, seed=6)
        assert a == b
        assert a != c or len(a) == er_small.m  # different coins, different spanner
