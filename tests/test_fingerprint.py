"""``Network.fingerprint()`` — the artifact store's addressing primitive.

The contract (DESIGN.md §3.8): two networks share a fingerprint iff
they agree on ``n``, the knowledge model, and the exact
``eid -> (u, v)`` mapping; the hash is invariant to construction input
order and to lazy view materialization.
"""

from __future__ import annotations

from repro.bench.workloads import dense_graph
from repro.graphs import erdos_renyi, torus
from repro.local.knowledge import Knowledge
from repro.local.network import Network


def _pairs() -> list[tuple[int, int]]:
    return [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]


class TestFingerprint:
    def test_stable_and_cached(self):
        net = erdos_renyi(40, 0.2, seed=3)
        first = net.fingerprint()
        assert first == net.fingerprint()
        assert len(first) == 64 and int(first, 16) >= 0  # hex sha256

    def test_equal_content_equal_fingerprint(self):
        a = Network.from_edge_pairs(4, _pairs())
        b = Network.from_edge_pairs(4, _pairs(), name="other-name")
        assert a.fingerprint() == b.fingerprint()  # names are cosmetic

    def test_invariant_to_edge_input_order(self):
        # from_edge_pairs assigns eids by position, so reversing the
        # list changes the eid->endpoints mapping; feeding identical
        # EdgeRef rows in any order must not.
        a = Network.from_edge_pairs(4, _pairs())
        edges = [a.edge(eid) for eid in a.edge_ids]
        shuffled = Network(4, reversed(edges))
        assert a.fingerprint() == shuffled.fingerprint()

    def test_view_materialization_does_not_change_hash(self):
        net = erdos_renyi(30, 0.2, seed=5)
        before = net.fingerprint()
        # Materialize every lazy view the Network owns.
        net.adjacency()
        for v in net.nodes():
            net.incident(v)
            net.neighbors(v)
        for eid in net.edge_ids:
            net.edge(eid)
        assert net.fingerprint() == before

    def test_distinct_graphs_distinct_fingerprints(self):
        base = Network.from_edge_pairs(4, _pairs())
        relabeled = Network.from_edge_pairs(4, [(3, 2), (2, 1), (1, 0), (3, 0), (2, 0)])
        missing_edge = Network.from_edge_pairs(4, _pairs()[:-1])
        bigger = Network.from_edge_pairs(5, _pairs())
        fingerprints = {
            base.fingerprint(),
            relabeled.fingerprint(),
            missing_edge.fingerprint(),
            bigger.fingerprint(),
        }
        assert len(fingerprints) == 4

    def test_same_pairs_different_eids_differ(self):
        # Same topology, shifted edge ids: the unique-edge-ID model
        # makes the ids semantic, so the fingerprints must differ.
        from repro.local.edges import EdgeRef

        a = Network.from_edge_pairs(4, _pairs())
        shifted = Network(
            4,
            [EdgeRef(eid + 10, *a.endpoints(eid)) for eid in a.edge_ids],
        )
        assert a.fingerprint() != shifted.fingerprint()

    def test_knowledge_is_part_of_the_hash(self):
        net = Network.from_edge_pairs(4, _pairs())
        kt1 = net.with_knowledge(Knowledge.KT1)
        assert net.fingerprint() != kt1.fingerprint()
        # ...and the clone's hash is its own, not the parent's cache.
        assert kt1.fingerprint() == Network.from_edge_pairs(
            4, _pairs(), knowledge=Knowledge.KT1
        ).fingerprint()

    def test_full_subnetwork_collides_with_parent(self):
        # Same n, same eid->endpoints mapping, same knowledge: the
        # "collide only when truly identical" direction.
        net = torus(4, 4)
        assert net.subnetwork(net.edge_ids).fingerprint() == net.fingerprint()

    def test_proper_subnetwork_differs(self):
        net = torus(4, 4)
        sub = net.subnetwork(list(net.edge_ids)[:-1])
        assert sub.fingerprint() != net.fingerprint()


class TestValueEquality:
    def test_networks_compare_by_content(self):
        a = Network.from_edge_pairs(4, _pairs(), name="a")
        b = Network.from_edge_pairs(4, _pairs(), name="b")
        assert a == b and hash(a) == hash(b)
        assert a != Network.from_edge_pairs(4, _pairs()[:-1])
        assert a != Network.from_edge_pairs(4, _pairs()).with_knowledge(Knowledge.KT1)
        assert a != object() and (a == object()) is False

    def test_store_rebound_results_compare_equal(self, tmp_path):
        # The property that motivates value equality: a SpannerResult
        # rebound to a content-identical graph equals the live build.
        from repro.core import SamplerParams
        from repro.core.distributed import build_spanner_distributed
        from repro.core.spanner import SpannerResult

        net = erdos_renyi(30, 0.2, seed=4)
        twin = erdos_renyi(30, 0.2, seed=4)
        result = build_spanner_distributed(net, SamplerParams(k=1, h=1, seed=2))
        path = tmp_path / "sp.npz"
        result.to_npz(path)
        assert SpannerResult.from_npz(path, twin) == result


class TestDenseGraphDedupe:
    def test_repeated_builds_return_the_same_object(self):
        a = dense_graph(48, seed=2)
        b = dense_graph(48, seed=2)
        assert a is b

    def test_distinct_instances_stay_distinct(self):
        assert dense_graph(48, seed=2) is not dense_graph(48, seed=3)
