"""Message-corruption faults: determinism, ordering, metering (§3.9)."""

from __future__ import annotations

import pickle

import pytest

from repro.local import CORRUPTED, FaultPlan, NodeProgram
from repro.local.metrics import MessageStats
from repro.local.runtime import run_program


class Collector(NodeProgram):
    """Echo once, record every received payload — corruption-tolerant."""

    def __init__(self, rounds: int = 1) -> None:
        self.rounds = rounds
        self.received: list[object] = []
        self._r = 0

    def on_start(self, ctx):
        for port in ctx.ports:
            ctx.send(port, ("data", ctx.node), tag="test")

    def on_round(self, ctx, inbox):
        self._r += 1
        self.received.extend(msg.payload for msg in inbox)
        if self._r >= self.rounds:
            ctx.halt()

    def output(self):
        return tuple(
            "CORRUPTED" if payload is CORRUPTED else payload
            for payload in self.received
        )


class TestCorruptionSemantics:
    def test_corrupted_payload_is_the_sentinel(self, path4):
        plan = FaultPlan(corrupt_rule=lambda r, eid, sender: True)
        report = run_program(path4, lambda n: Collector(), seed=0, faults=plan)
        # every message is delivered (total unchanged) but tampered
        assert report.messages.total == 2 * path4.m
        assert report.messages.corrupted == 2 * path4.m
        assert report.messages.dropped == 0
        for out in report.outputs.values():
            assert out, "corrupted messages must still be delivered"
            assert all(payload == "CORRUPTED" for payload in out)

    def test_envelope_survives_corruption(self, path4):
        """Edge/tag metering is untouched: only the payload is garbage."""
        plan = FaultPlan(corrupt_probability=1.0, seed=1)
        clean = run_program(path4, lambda n: Collector(), seed=0)
        dirty = run_program(path4, lambda n: Collector(), seed=0, faults=plan)
        assert dirty.messages.total == clean.messages.total
        assert dirty.messages.by_tag == clean.messages.by_tag
        assert dirty.messages.per_round == clean.messages.per_round

    def test_drop_beats_corruption(self, er_small):
        """A dropped message is never also corrupted."""
        plan = FaultPlan(
            rule=lambda r, eid, sender: True,
            corrupt_probability=1.0,
            seed=2,
        )
        report = run_program(er_small, lambda n: Collector(), seed=0, faults=plan)
        assert report.messages.dropped == 2 * er_small.m
        assert report.messages.total == 0
        assert report.messages.corrupted == 0

    def test_corruption_never_shifts_drop_coins(self, er_small):
        """Adding corruption must not change which messages drop."""
        drops_only = FaultPlan(drop_probability=0.4, seed=7)
        both = FaultPlan(drop_probability=0.4, seed=7, corrupt_probability=0.6)
        r1 = run_program(er_small, lambda n: Collector(), seed=0, faults=drops_only)
        r2 = run_program(er_small, lambda n: Collector(), seed=0, faults=both)
        assert r1.messages.dropped == r2.messages.dropped
        assert r1.messages.total == r2.messages.total
        assert r2.messages.corrupted > 0

    def test_corruption_is_deterministic(self, er_small):
        plan = FaultPlan(corrupt_probability=0.5, seed=9)
        r1 = run_program(er_small, lambda n: Collector(), seed=0, faults=plan)
        r2 = run_program(er_small, lambda n: Collector(), seed=0, faults=plan)
        assert r1.outputs == r2.outputs
        assert r1.messages.corrupted == r2.messages.corrupted
        assert 0 < r1.messages.corrupted < 2 * er_small.m

    def test_rule_is_consulted_before_the_coin(self):
        """A rule hit never consumes the coin: for triples the rule
        declines, the decision is identical with or without a rule."""
        coin_only = FaultPlan(corrupt_probability=0.5, seed=4)
        with_rule = FaultPlan(
            corrupt_probability=0.5,
            seed=4,
            corrupt_rule=lambda r, eid, sender: eid == 0,
        )
        for r in range(4):
            for eid in range(6):
                for sender in range(4):
                    if eid == 0:
                        assert with_rule.corrupts(r, eid, sender)
                    else:
                        assert with_rule.corrupts(r, eid, sender) == coin_only.corrupts(
                            r, eid, sender
                        )

    def test_corrupt_and_drop_streams_are_independent(self):
        """Same seed, same triple: the two decisions use distinct keys."""
        plan = FaultPlan(drop_probability=0.5, corrupt_probability=0.5, seed=11)
        triples = [(r, e, s) for r in range(6) for e in range(6) for s in range(2)]
        drops = [plan.drops(*t) for t in triples]
        corrupts = [plan.corrupts(*t) for t in triples]
        assert drops != corrupts  # identical streams would correlate fully

    @pytest.mark.parametrize("fixed", (None, 3))
    def test_schedulers_agree_under_corruption(self, er_small, fixed):
        def run(scheduler):
            plan = FaultPlan(
                drop_probability=0.2,
                corrupt_probability=0.3,
                seed=5,
                corrupt_rule=lambda r, eid, sender: (r + eid) % 5 == 0,
            )
            return run_program(
                er_small,
                lambda n: Collector(rounds=3),
                seed=2,
                faults=plan,
                fixed_rounds=fixed,
                scheduler=scheduler,
            )

        dense, active = run("dense"), run("active")
        assert dense.outputs == active.outputs
        assert dense.messages.total == active.messages.total
        assert dense.messages.dropped == active.messages.dropped
        assert dense.messages.corrupted == active.messages.corrupted
        assert dense.messages.per_round == active.messages.per_round


class TestFaultPlanSurface:
    def test_is_noop_covers_all_four_knobs(self):
        assert FaultPlan.none().is_noop
        assert not FaultPlan(drop_probability=0.1).is_noop
        assert not FaultPlan(rule=lambda r, e, s: False).is_noop
        assert not FaultPlan(corrupt_probability=0.1).is_noop
        assert not FaultPlan(corrupt_rule=lambda r, e, s: False).is_noop

    def test_invalid_corrupt_probability(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_probability=-0.1)

    def test_corrupted_singleton_survives_pickling(self):
        assert pickle.loads(pickle.dumps(CORRUPTED)) is CORRUPTED

    def test_stats_merge_carries_corrupted(self):
        a, b = MessageStats(), MessageStats()
        a.record("t")
        a.record_corrupt()
        b.record("t")
        b.record_corrupt()
        b.record_corrupt()
        merged = MessageStats.merge(a, b)
        assert merged.corrupted == 3


class _SpyStats(MessageStats):
    """MessageStats that tallies which metering entry points ran."""

    def __init__(self) -> None:
        super().__init__()
        self.record_calls = 0
        self.batch_calls = 0

    def record(self, tag):
        self.record_calls += 1
        super().record(tag)

    def record_batch(self, msgs):
        self.batch_calls += 1
        super().record_batch(msgs)


class TestBatchedMetering:
    """Corrupt-only plans must stay on the batched collect path: nothing
    can drop, so outboxes move whole and metering is per round
    (``record_batch``), never per message (``record``) — the corruption
    swap happens in place over the batch."""

    @pytest.mark.parametrize("scheduler", ("active", "dense"))
    def test_corrupt_only_never_meters_per_message(self, path4, scheduler, monkeypatch):
        import repro.local.runtime as runtime_mod

        spies: list[_SpyStats] = []

        def make_spy():
            spy = _SpyStats()
            spies.append(spy)
            return spy

        monkeypatch.setattr(runtime_mod, "MessageStats", make_spy)
        plan = FaultPlan(corrupt_probability=0.5, seed=7)
        report = run_program(
            path4, lambda n: Collector(2), seed=0, faults=plan, scheduler=scheduler
        )
        assert spies, "runtime did not construct its stats object"
        assert sum(s.record_calls for s in spies) == 0
        assert sum(s.batch_calls for s in spies) > 0
        assert report.messages.total > 0
        assert report.messages.corrupted > 0

    def test_drop_plans_use_the_per_message_path(self, path4, monkeypatch):
        import repro.local.runtime as runtime_mod

        spies: list[_SpyStats] = []

        def make_spy():
            spy = _SpyStats()
            spies.append(spy)
            return spy

        monkeypatch.setattr(runtime_mod, "MessageStats", make_spy)
        plan = FaultPlan(drop_probability=0.3, corrupt_probability=0.3, seed=7)
        report = run_program(path4, lambda n: Collector(2), seed=0, faults=plan)
        assert sum(s.record_calls for s in spies) == report.messages.total > 0

    def test_corrupt_only_report_matches_per_message_semantics(self, path4):
        # The batched path must meter exactly what the per-message path
        # would have: same totals, same per-round series, same corrupted
        # count, on both schedulers.
        plan = FaultPlan(corrupt_probability=0.4, seed=11)
        active = run_program(path4, lambda n: Collector(2), seed=0, faults=plan)
        dense = run_program(
            path4, lambda n: Collector(2), seed=0, faults=plan, scheduler="dense"
        )
        assert active.messages.total == dense.messages.total
        assert active.messages.per_round == dense.messages.per_round
        assert active.messages.corrupted == dense.messages.corrupted
        assert active.outputs == dense.outputs
